//! Phase 1: initial patch-pool construction (paper §3.3).
//!
//! Candidates come from the component-based synthesizer; each is validated
//! against the initial (failing) test case — and any further provided tests —
//! by concolically executing the patched program and refining the parameter
//! constraint until the specification holds on the observed partition. The
//! refinement loop is the same machinery as Phase 3 (`RefinePatch`), applied
//! at construction time, which is what the paper means by "the constraints
//! shown in the table are already modified by the synthesizer to pass the
//! initial test case".

use cpr_analysis::alpha_equivalent;
use cpr_concolic::{ConcolicExecutor, HolePatch};
use cpr_lang::{HoleKind, Outcome};
use cpr_smt::{Region, TermId};
use cpr_synth::{enumerate, AbstractPatch, PatchCandidate};

use crate::problem::{RepairConfig, RepairProblem};
use crate::ranking::PoolEntry;
use crate::reduce::refine_patch;
use crate::session::Session;

/// Statistics from pool construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthStats {
    /// Templates enumerated before validation.
    pub enumerated: usize,
    /// Templates surviving validation (the pool size in abstract patches).
    pub validated: usize,
    /// Total concrete patches covered by the validated pool (`|P_Init|`).
    pub concrete: u128,
    /// Concrete candidates rejected by the alpha-equivalence screen
    /// (structurally equal to the buggy expression modulo commutativity)
    /// without spending their refinement solver queries.
    pub screened: usize,
}

/// Builds and validates the initial patch pool for `problem`.
pub fn build_patch_pool(
    sess: &mut Session,
    problem: &RepairProblem,
    config: &RepairConfig,
) -> (Vec<PoolEntry>, SynthStats) {
    let candidates = enumerate(&mut sess.pool, &problem.components, &problem.synth);
    let mut stats = SynthStats {
        enumerated: candidates.len(),
        ..SynthStats::default()
    };
    // The buggy expression at the hole, as a pool term for the
    // alpha-equivalence screen. Interned unconditionally — not only when
    // screening is on — so term ids (and everything downstream of them)
    // are independent of [`RepairConfig::screen_domain`]. A condition
    // hole with no recorded baseline behaves as `false`.
    let baseline: Option<TermId> = match problem.baseline_expr.as_deref() {
        Some(src) => crate::lower::lower_expr_src(&mut sess.pool, src).ok(),
        None if problem.synth.hole_kind == HoleKind::Cond => Some(sess.pool.ff()),
        None => None,
    };
    let (plo, phi) = problem.synth.param_range;
    let mut entries = Vec::new();
    let mut next_id = 0;
    for cand in candidates {
        let initial = if cand.params.is_empty() {
            AbstractPatch::concrete(next_id, cand.theta)
        } else {
            AbstractPatch::new(
                next_id,
                cand.theta,
                cand.params.clone(),
                Region::full(cand.params.clone(), plo, phi),
            )
        };
        if let Some(validated) = validate_candidate(
            sess,
            problem,
            config,
            &cand,
            initial,
            baseline,
            &mut stats.screened,
        ) {
            entries.push(PoolEntry::new(validated));
            next_id += 1;
        }
    }
    stats.validated = entries.len();
    stats.concrete = entries.iter().map(|e| e.patch.concrete_count()).sum();
    (entries, stats)
}

/// Validates one candidate against all provided tests, refining its
/// parameter constraint. Returns the refined patch, or `None` when the
/// candidate cannot repair some test for any parameter value.
fn validate_candidate(
    sess: &mut Session,
    problem: &RepairProblem,
    config: &RepairConfig,
    cand: &PatchCandidate,
    mut patch: AbstractPatch,
    baseline: Option<TermId>,
    screened: &mut usize,
) -> Option<AbstractPatch> {
    let exec = ConcolicExecutor::with_budgets(config.exec_max_steps, config.exec_max_path);
    for input in problem
        .failing_inputs
        .iter()
        .chain(problem.passing_inputs.iter())
    {
        let input_model = sess.input_model(input);
        let mut accepted = false;
        for _round in 0..config.max_validation_rounds {
            let rep = patch.representative()?;
            let hole = HolePatch {
                theta: cand.theta,
                params: rep.clone(),
            };
            let run = exec.execute(&mut sess.pool, &problem.program, &input_model, Some(&hole));
            match &run.outcome {
                // A sanitizer crash the specification did not capture: the
                // candidate does not even keep the program crash-free on
                // this test — discard.
                Outcome::Crash { .. } => return None,
                Outcome::MissingPatch => unreachable!("patch provided"),
                // Vacuous paths carry no evidence.
                Outcome::AssumeFailed => {
                    accepted = true;
                    break;
                }
                // A diverging patched program does not pass the test.
                Outcome::StepLimit => return None,
                Outcome::AssertFailed { .. }
                | Outcome::SpecViolated { .. }
                | Outcome::Returned(_) => {
                    let failed = run.outcome.is_failure();
                    if !run.hit_patch {
                        // Patch location not exercised: the program is
                        // unchanged on this input, so a failing test stays
                        // failing.
                        if failed {
                            return None;
                        }
                        accepted = true;
                        break;
                    }
                    let Some(sigma) = run.spec_term(&mut sess.pool) else {
                        // No specification observed on this path.
                        if failed {
                            return None;
                        }
                        accepted = true;
                        break;
                    };
                    let phi = run.constraints_for_patch(&mut sess.pool, cand.theta);
                    // Alpha-equivalence screen: a concrete candidate
                    // structurally equal (modulo commutativity) to the
                    // buggy expression reproduces the original behaviour
                    // verbatim, so this failing test keeps failing and the
                    // refinement below is guaranteed to end in rejection.
                    // Replicate refinement's interning (the region term and
                    // ¬σ) and reject without its solver queries.
                    if config.screen_domain != cpr_analysis::ScreenDomain::Off
                        && failed
                        && cand.params.is_empty()
                    {
                        if let Some(base) = baseline {
                            if alpha_equivalent(&sess.pool, cand.theta, base) {
                                patch.constraint.to_term(&mut sess.pool);
                                sess.pool.not(sigma);
                                *screened += 1;
                                return None;
                            }
                        }
                    }
                    let refined =
                        refine_patch(sess, &phi, &patch.constraint, sigma, 0, &mut 0, config);
                    if refined.is_empty() {
                        return None;
                    }
                    if !failed {
                        // The representative passes and the region is
                        // cleaned of the violations the solver could find:
                        // validated on this test (Phase 3 keeps refining
                        // during exploration).
                        patch = patch.with_constraint(refined);
                        accepted = true;
                        break;
                    }
                    // The representative failed. Make sure it is gone even
                    // when the budgeted refinement could not exclude it,
                    // then retry with a fresh representative.
                    let mut region = refined;
                    let rep_point: Vec<i64> = patch
                        .params
                        .iter()
                        .map(|&p| rep.int(p).unwrap_or(0))
                        .collect();
                    if region.contains_point(&rep_point) {
                        let parts = region.split_at(&rep_point);
                        region = cpr_smt::Region::union(patch.params.clone(), parts).merged();
                    }
                    if region.is_empty() {
                        return None;
                    }
                    patch = patch.with_constraint(region);
                }
            }
        }
        if !accepted {
            // Could not find a passing representative within budget.
            return None;
        }
    }
    Some(patch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{test_input, RepairProblem};
    use cpr_lang::{check, parse};
    use cpr_synth::{ComponentSet, SynthConfig};

    const DIV_SRC: &str = "program cve_2016_3623 {
        input x in [-10, 10];
        input y in [-10, 10];
        if (__patch_cond__(x, y)) { return 1; }
        bug div_by_zero requires (x * y != 0);
        return 100 / (x * y);
      }";

    fn problem() -> RepairProblem {
        let program = parse(DIV_SRC).unwrap();
        check(&program).unwrap();
        RepairProblem::new(
            "Libtiff/CVE-2016-3623",
            program,
            ComponentSet::new()
                .with_all_comparisons()
                .with_logic()
                .with_variables(["x", "y"])
                .with_constants(&[0]),
            SynthConfig::default(),
            vec![test_input(&[("x", 7), ("y", 0)])],
        )
        .with_developer_patch("x == 0 || y == 0")
    }

    #[test]
    fn pool_construction_produces_plausible_patches() {
        let problem = problem();
        let config = RepairConfig::quick();
        let mut sess = Session::new(&problem, &config);
        let (entries, stats) = build_patch_pool(&mut sess, &problem, &config);
        assert!(stats.enumerated > entries.len(), "validation filtered none");
        assert!(!entries.is_empty(), "no plausible patches found");
        assert!(stats.concrete > 0);

        // Every surviving patch repairs the failing test with its
        // representative parameters.
        let exec = ConcolicExecutor::new();
        let input = sess.input_model(&test_input(&[("x", 7), ("y", 0)]));
        for entry in &entries {
            let rep = entry.patch.representative().unwrap();
            let hole = HolePatch {
                theta: entry.patch.theta,
                params: rep,
            };
            let run = exec.execute(&mut sess.pool, &problem.program, &input, Some(&hole));
            assert!(
                !run.outcome.is_failure(),
                "patch {} does not repair the failing test",
                entry.patch.display(&sess.pool)
            );
        }
    }

    #[test]
    fn correct_patch_template_survives_with_correct_params() {
        let problem = problem();
        let config = RepairConfig::quick();
        let mut sess = Session::new(&problem, &config);
        let (entries, _) = build_patch_pool(&mut sess, &problem, &config);
        // The paper's correct patch template x == a || y == b must be in
        // the pool with (0, 0) still inside its parameter region.
        let found = entries.iter().any(|e| {
            let d = e.patch.display(&sess.pool);
            d.starts_with("(or (= x a) (= y b))") && e.patch.constraint.contains_point(&[0, 0])
        });
        assert!(
            found,
            "correct template missing or (0,0) refined away: {:?}",
            entries
                .iter()
                .map(|e| e.patch.display(&sess.pool))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn tautology_survives_but_contradiction_like_guards_do_too() {
        // `true` deletes functionality (never reaches the bug) and so is
        // plausible; `false` leaves the program unchanged and keeps failing,
        // so it must be filtered out.
        let problem = problem();
        let config = RepairConfig::quick();
        let mut sess = Session::new(&problem, &config);
        let (entries, _) = build_patch_pool(&mut sess, &problem, &config);
        let displays: Vec<String> = entries
            .iter()
            .map(|e| e.patch.display(&sess.pool))
            .collect();
        assert!(displays.iter().any(|d| d == "true"), "{displays:?}");
        assert!(displays.iter().all(|d| d != "false"), "{displays:?}");
    }
}
