//! Patch-space reduction: the paper's Algorithm 2 (`Reduce`) and
//! Algorithm 3 (`RefinePatch`).
//!
//! Given one concolic run (a path constraint `φ_t`, the captured
//! specification `σ`, and the hit flags), `Reduce` walks the entire patch
//! pool: every patch whose formula is feasible with the partition is ranked,
//! and — when the bug location was exercised — refined so that no surviving
//! parameter value can violate `σ` anywhere in the partition. Refinement
//! works on the exact region representation of `T_ρ` via counterexample
//! splitting and merging.
//!
//! # Parallelism
//!
//! The pool walk is embarrassingly parallel — entries never interact — so
//! `reduce` fans it out over [`RepairConfig::threads`] workers, each owning
//! a fork of the term pool and the solver. The output is bit-identical to a
//! serial walk at any thread count because of two invariants:
//!
//! 1. **Serial pre-interning.** Every term shared between entries (the
//!    re-targeted path constraints `φ_i`, the parameter-constraint terms
//!    `T_i`, `σ`, `¬σ`, and the oriented `¬ψ_i` of the deletion check) is
//!    interned into the shared pool *before* the fan-out, so all pool forks
//!    agree on those ids.
//! 2. **At most one worker-local id per query.** Any term a worker interns
//!    itself (a refinement region term) gets an id past the pre-interned
//!    base, so in the solver's canonical (sorted) query order it always
//!    sorts last — a worker's interning history can never change the
//!    canonical form, hence never the verdict or the witness model.
//!
//! Workers return pool-independent outcomes (regions, flags) that are
//! merged in entry order, and their solver statistics and cacheable query
//! results are folded back via [`Solver::absorb`].

use std::sync::atomic::{AtomicUsize, Ordering};

use cpr_concolic::ConcolicResult;
use cpr_smt::{Domains, FrameSession, Region, SatResult, Solver, TermId, TermPool};
use cpr_synth::AbstractPatch;

use crate::problem::RepairConfig;
use crate::ranking::PoolEntry;
use crate::session::Session;

/// Statistics from one `Reduce` invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Patches whose parameter constraint was narrowed.
    pub refined: usize,
    /// Patches removed entirely (empty constraint after refinement).
    pub removed: usize,
    /// Patches found feasible with the partition (ranked up).
    pub feasible: usize,
    /// Solver calls spent.
    pub solver_calls: u64,
    /// Queries answered by the static screening layer
    /// ([`cpr_analysis::statically_unsat`]) instead of a solver search.
    /// Counted on top of `solver_calls`, which only counts issued queries.
    pub screened: u64,
}

/// Per-entry result of the parallel pool walk. Deliberately free of
/// `TermId`s from worker-local pools: regions and flags carry over to the
/// shared pool unchanged.
struct EntryOutcome {
    feasible: bool,
    refined_shrunk: bool,
    new_patch: Option<AbstractPatch>,
    deletion: bool,
    screened: u64,
}

/// Algorithm 2: reduces the patch pool against one explored partition.
///
/// Entries whose constraint becomes empty are removed from `entries`.
pub fn reduce(
    sess: &mut Session,
    entries: &mut Vec<PoolEntry>,
    run: &ConcolicResult,
    config: &RepairConfig,
) -> ReduceStats {
    let mut stats = ReduceStats::default();
    let before = sess.solver.stats().queries;
    let n = entries.len();

    // Serial pre-interning (invariant 1 of the module docs): φ_i, T_i, σ,
    // ¬σ and the oriented ¬ψ_i all get their ids in the shared pool.
    let thetas: Vec<TermId> = entries.iter().map(|e| e.patch.theta).collect();
    let phis = run.constraints_for_patches(&mut sess.pool, &thetas);
    let t_terms: Vec<TermId> = entries
        .iter_mut()
        .map(|e| e.patch.constraint_term(&mut sess.pool))
        .collect();
    let sigma = run.spec_term(&mut sess.pool);
    if let Some(sigma) = sigma {
        sess.pool.not(sigma);
    }
    if config.deletion_check {
        for phi in &phis {
            if let Some(psi) = oriented_patch_step(run, phi) {
                sess.pool.not(psi);
            }
        }
    }
    let base_terms = sess.pool.len();
    let refine_spec = run.hit_bug || !run.asserts.is_empty();

    // Fan the per-entry work out over forked workers; entry index order is
    // restored at merge time, so scheduling cannot influence the result.
    let threads = config.threads.clamp(1, n.max(1));
    let counter = AtomicUsize::new(0);
    let entries_view: &[PoolEntry] = entries;
    let domains = &sess.domains;
    let worker_results: Vec<(Vec<(usize, EntryOutcome)>, Solver)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let mut pool = sess.pool.clone();
                let mut solver = sess.solver.fork(base_terms);
                let counter = &counter;
                let phis = &phis;
                let t_terms = &t_terms;
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let outcome = process_entry(
                            &mut pool,
                            &mut solver,
                            domains,
                            &entries_view[i].patch,
                            &phis[i],
                            t_terms[i],
                            sigma,
                            refine_spec,
                            run,
                            config,
                        );
                        done.push((i, outcome));
                    }
                    (done, solver)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reduce worker panicked"))
            .collect()
    });

    // Deterministic merge: fold solvers back in spawn order, apply
    // outcomes in entry order.
    let mut outcomes: Vec<Option<EntryOutcome>> = Vec::with_capacity(n);
    outcomes.resize_with(n, || None);
    for (done, solver) in worker_results {
        for (i, outcome) in done {
            outcomes[i] = Some(outcome);
        }
        sess.solver.absorb(solver);
    }
    for (entry, outcome) in entries.iter_mut().zip(outcomes) {
        let outcome = outcome.expect("every entry is processed exactly once");
        stats.screened += outcome.screened;
        if !outcome.feasible {
            // Unsat/Unknown π: cannot reason about ρ here; ranking unchanged.
            continue;
        }
        stats.feasible += 1;
        if outcome.refined_shrunk {
            stats.refined += 1;
        }
        if let Some(patch) = outcome.new_patch {
            entry.patch = patch;
        }
        // UpdateRanking(ρ): feasibility evidence, plus bug-location bonus,
        // plus the functionality-deletion check.
        if !entry.patch.is_exhausted() {
            entry.score.feasible += 1;
            if run.hit_bug {
                entry.score.bug_hits += 1;
            }
            if outcome.deletion {
                entry.score.deletion_evidence += 1;
            }
        }
    }

    let removed_before = entries.len();
    entries.retain(|e| !e.patch.is_exhausted());
    stats.removed = removed_before - entries.len();
    stats.solver_calls = sess.solver.stats().queries - before;
    stats
}

/// A solver check behind the static screening layer. With
/// [`RepairConfig::screen_domain`] not `Off`, a query refuted by the
/// certified root-level contraction (intervals or zones) is answered
/// `Unsat` without a search — and without
/// touching the solver's cache or statistics. The screen is an
/// under-approximation of [`Solver::check`], so the verdict (and everything
/// downstream of it) is identical either way; only the issued-query count
/// and `screened` differ.
///
/// The query is `prefix ++ extras`. When `frames` is given, the session
/// must already hold exactly `prefix` pushed (the caller's invariant) and
/// the check runs incrementally — `extras` are pushed, decided, and popped,
/// which [`Solver::check_frames_with`] guarantees is verdict- and
/// model-identical to `check` on the full query. The screen always sees
/// the full query, so `screened` counts match on either path.
#[allow(clippy::too_many_arguments)]
fn check_screened(
    pool: &TermPool,
    solver: &mut Solver,
    domains: &Domains,
    frames: Option<&mut FrameSession>,
    prefix: &[TermId],
    extras: &[TermId],
    domain: cpr_analysis::ScreenDomain,
    screened: &mut u64,
) -> SatResult {
    let full = || {
        let mut q: Vec<TermId> = Vec::with_capacity(prefix.len() + extras.len());
        q.extend_from_slice(prefix);
        q.extend_from_slice(extras);
        q
    };
    if domain != cpr_analysis::ScreenDomain::Off {
        let q = full();
        if cpr_analysis::screened_unsat(solver, pool, &q, domains, domain) {
            *screened += 1;
            return SatResult::Unsat;
        }
        return match frames {
            Some(f) => solver.check_frames_with(pool, f, extras, None),
            None => solver.check(pool, &q, domains),
        };
    }
    match frames {
        Some(f) => solver.check_frames_with(pool, f, extras, None),
        None => solver.check(pool, &full(), domains),
    }
}

/// One entry of the pool walk, on worker-owned state.
#[allow(clippy::too_many_arguments)]
fn process_entry(
    pool: &mut TermPool,
    solver: &mut Solver,
    domains: &Domains,
    patch: &AbstractPatch,
    phi: &[TermId],
    t_term: TermId,
    sigma: Option<TermId>,
    refine_spec: bool,
    run: &ConcolicResult,
    config: &RepairConfig,
) -> EntryOutcome {
    let mut outcome = EntryOutcome {
        feasible: false,
        refined_shrunk: false,
        new_patch: None,
        deletion: false,
        screened: 0,
    };
    // Every query this entry issues — the feasibility gate and the whole
    // refinement recursion — conjoins the same path prefix φ. With the
    // incremental knobs on, push φ as assertion frames once: the shared
    // prefix is contracted a single time and each query only push/pops its
    // own hole constraints.
    let mut frames: Option<FrameSession> =
        if solver.config().incremental && solver.config().batch_candidates {
            let mut f = solver.open_frames(pool, domains);
            for &c in phi {
                solver.push_frame(pool, &mut f, c);
            }
            Some(f)
        } else {
            None
        };
    // π ← φ(X) ∧ ψ_ρ(X, A) ∧ T_ρ(A)
    if !check_screened(
        pool,
        solver,
        domains,
        frames.as_mut(),
        phi,
        &[t_term],
        config.screen_domain,
        &mut outcome.screened,
    )
    .is_sat()
    {
        return outcome;
    }
    outcome.feasible = true;
    let mut patch = patch.clone();
    if refine_spec {
        if let Some(sigma) = sigma {
            let refined = refine_patch_impl(
                pool,
                solver,
                domains,
                frames.as_mut(),
                phi,
                &patch.constraint,
                sigma,
                0,
                &mut 0,
                &mut outcome.screened,
                config,
            );
            if refined.volume() < patch.constraint.volume() {
                outcome.refined_shrunk = true;
            }
            patch = patch.with_constraint(refined);
            outcome.new_patch = Some(patch.clone());
        }
    }
    if !patch.is_exhausted() && config.deletion_check {
        outcome.deletion = deletion_like(
            pool,
            solver,
            domains,
            &patch,
            run,
            phi,
            &mut outcome.screened,
            config,
        );
    }
    outcome
}

/// The path constraint of the (first) patch-hole step of `phi`, oriented
/// the way the partition went.
fn oriented_patch_step(run: &ConcolicResult, phi: &[TermId]) -> Option<TermId> {
    run.path
        .iter()
        .zip(phi)
        .find(|(step, _)| step.from_patch())
        .map(|(_, &c)| c)
}

/// Functionality-deletion heuristic (§3.5.3): on the partition defined by
/// the *non-patch* steps of the path, does the patch force a single branch
/// direction for every input? Tautology/contradiction guards always do.
///
/// With [`RepairConfig::model_counting`] the check is refined as the paper
/// suggests: the *proportion* of partition inputs redirected by the patch
/// is computed by exact branch-and-count (under the patch's representative
/// parameters), and redirection above `deletion_ratio` counts as evidence.
#[allow(clippy::too_many_arguments)]
fn deletion_like(
    pool: &mut TermPool,
    solver: &mut Solver,
    domains: &Domains,
    patch: &AbstractPatch,
    run: &ConcolicResult,
    phi: &[TermId],
    screened: &mut u64,
    config: &RepairConfig,
) -> bool {
    // Collect the partition without the patch branch itself.
    let mut base: Vec<TermId> = Vec::new();
    let mut psi_oriented: Option<TermId> = None;
    for (step, c) in run.path.iter().zip(phi) {
        if step.from_patch() {
            if psi_oriented.is_none() {
                psi_oriented = Some(*c);
            }
        } else {
            base.push(*c);
        }
    }
    let Some(psi) = psi_oriented else {
        return false;
    };
    if config.model_counting {
        // Fix parameters to the representative so the count ranges over
        // program inputs only.
        let Some(rep) = patch.representative() else {
            return false;
        };
        let mut map = std::collections::HashMap::new();
        for (v, val) in rep.iter() {
            let c = pool.int(val.as_int().unwrap_or(0));
            map.insert(v, c);
        }
        let base_inst: Vec<TermId> = base.iter().map(|&c| pool.substitute(c, &map)).collect();
        let psi_inst = pool.substitute(psi, &map);
        let total = solver.count_models(pool, &base_inst, domains);
        if total.hi == 0 {
            return false;
        }
        // The partition was recorded with ψ oriented *along* the executed
        // path; the redirected inputs are those taking the opposite side.
        let not_psi = pool.not(psi_inst);
        let mut away = base_inst.clone();
        away.push(not_psi);
        let redirected = solver.count_models(pool, &away, domains);
        let ratio = 1.0 - redirected.estimate() / total.estimate().max(1.0);
        return ratio >= config.deletion_ratio;
    }
    let t_term = patch.constraint_term(pool);
    base.push(t_term);
    // If the *other* direction is infeasible on this partition, the patch is
    // constant here: evidence of functionality deletion. (This query is
    // over the non-patch partition, not the entry's φ prefix, so it does
    // not ride the entry's frame session.)
    let not_psi = pool.not(psi);
    let mut q = base.clone();
    q.push(not_psi);
    matches!(
        check_screened(
            pool,
            solver,
            domains,
            None,
            &q,
            &[],
            config.screen_domain,
            screened,
        ),
        SatResult::Unsat
    )
}

/// Algorithm 3: refines the parameter constraint `T_ρ` (given as a
/// [`Region`]) so that the specification `σ` can no longer be violated on
/// the partition `φ` (which must already be re-targeted at this patch, i.e.
/// include `ψ_ρ`). Returns the refined region; an empty region means the
/// patch must be discarded.
pub fn refine_patch(
    sess: &mut Session,
    phi: &[TermId],
    region: &Region,
    sigma: TermId,
    depth: u32,
    calls: &mut u32,
    config: &RepairConfig,
) -> Region {
    refine_patch_impl(
        &mut sess.pool,
        &mut sess.solver,
        &sess.domains,
        None,
        phi,
        region,
        sigma,
        depth,
        calls,
        &mut 0,
        config,
    )
}

/// [`refine_patch`] on explicit pool/solver/domain state, so reduce workers
/// can run it on their forks. When `frames` is given it must hold exactly
/// `phi` pushed; every query of the refinement then reuses that contracted
/// prefix and only push/pops its own two or three hole constraints.
#[allow(clippy::too_many_arguments)]
fn refine_patch_impl(
    pool: &mut TermPool,
    solver: &mut Solver,
    domains: &Domains,
    mut frames: Option<&mut FrameSession>,
    phi: &[TermId],
    region: &Region,
    sigma: TermId,
    depth: u32,
    calls: &mut u32,
    screened: &mut u64,
    config: &RepairConfig,
) -> Region {
    if depth >= config.max_refine_depth || *calls >= config.max_refine_calls {
        // Budget exhausted: keep the region (conservative, mirrors a solver
        // timeout in the original tool).
        return region.clone();
    }
    let screen_domain = config.screen_domain;
    let region_term = region.to_term(pool);
    let not_sigma = pool.not(sigma);

    // ω_pass1 ← φ(X) ∧ σ(X)
    // The refinement budget `calls` counts screened queries too, so the
    // screen can never buy a deeper recursion than the solver would.
    *calls += 1;
    if check_screened(
        pool,
        solver,
        domains,
        frames.as_deref_mut(),
        phi,
        &[sigma],
        screen_domain,
        screened,
    )
    .is_sat()
    {
        // ω_pass2 ← φ ∧ ψ_ρ ∧ T_ρ ∧ σ
        *calls += 1;
        if check_screened(
            pool,
            solver,
            domains,
            frames.as_deref_mut(),
            phi,
            &[region_term, sigma],
            screen_domain,
            screened,
        )
        .is_unsat()
        {
            // No parameter value in T_ρ can make the spec pass: discard.
            return Region::empty(region.params().to_vec());
        }
    }

    // ω_fail ← φ ∧ ψ_ρ ∧ T_ρ ∧ ¬σ
    *calls += 1;
    match check_screened(
        pool,
        solver,
        domains,
        frames.as_deref_mut(),
        phi,
        &[region_term, not_sigma],
        screen_domain,
        screened,
    ) {
        SatResult::Sat(model) => {
            // Extract the counterexample parameter point m_A.
            let point: Vec<i64> = region
                .params()
                .iter()
                .map(|&p| model.int(p).unwrap_or(0))
                .collect();
            if !region.contains_point(&point) && !region.params().is_empty() {
                // Defensive: a model outside the region (should not happen);
                // stop refining rather than loop.
                return region.clone();
            }
            let subregions = region.split_at(&point);
            if subregions.is_empty() {
                return Region::empty(region.params().to_vec());
            }
            let mut kept: Vec<Region> = Vec::with_capacity(subregions.len());
            for r in subregions {
                // Guard: only recurse into regions compatible with the path.
                *calls += 1;
                let r_term = r.to_term(pool);
                match check_screened(
                    pool,
                    solver,
                    domains,
                    frames.as_deref_mut(),
                    phi,
                    &[r_term],
                    screen_domain,
                    screened,
                ) {
                    SatResult::Sat(_) | SatResult::Unknown => {
                        let refined = refine_patch_impl(
                            pool,
                            solver,
                            domains,
                            frames.as_deref_mut(),
                            phi,
                            &r,
                            sigma,
                            depth + 1,
                            calls,
                            screened,
                            config,
                        );
                        if !refined.is_empty() {
                            kept.push(refined);
                        }
                    }
                    SatResult::Unsat => {
                        // Cannot reason about this region here; keep it.
                        kept.push(r);
                    }
                }
            }
            Region::union(region.params().to_vec(), kept).merged()
        }
        // No counterexample: the constraint needs no further refinement.
        SatResult::Unsat | SatResult::Unknown => region.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{test_input, RepairProblem};
    use cpr_concolic::{ConcolicExecutor, HolePatch};
    use cpr_lang::{check, parse};
    use cpr_smt::Sort;
    use cpr_synth::{AbstractPatch, ComponentSet, SynthConfig};

    /// The running example of the paper: CVE-2016-3623-style divide by zero
    /// guarded by a condition hole.
    const DIV_SRC: &str = "program cve_2016_3623 {
        input x in [-10, 10];
        input y in [-10, 10];
        if (__patch_cond__(x, y)) { return 1; }
        bug div_by_zero requires (x * y != 0);
        return 100 / (x * y);
      }";

    fn setup() -> (Session, cpr_lang::Program, RepairConfig) {
        let program = parse(DIV_SRC).unwrap();
        check(&program).unwrap();
        let problem = RepairProblem::new(
            "demo",
            program.clone(),
            ComponentSet::new()
                .with_all_comparisons()
                .with_logic()
                .with_variables(["x", "y"]),
            SynthConfig::default(),
            vec![test_input(&[("x", 7), ("y", 0)])],
        );
        let config = RepairConfig::quick();
        let sess = Session::new(&problem, &config);
        (sess, program, config)
    }

    /// Reproduces the paper's §2 refinement of patch 1: exploring partition
    /// P1 (x > 3 ∧ y ≤ 5) refines `x ≥ a, a ∈ [-10, 7]` to `a ∈ [-10, 4]`.
    #[test]
    fn paper_example_patch1_refinement() {
        let (mut sess, program, config) = setup();
        // θ1 := x >= a with representative a = 7 (so x=7,y=0 passes the
        // guard? No: we need the partition that reaches the bug. Use an
        // input that fails the guard: x=4,y=0 with a=5 → 4 >= 5 false.)
        let x = sess.pool.named_var("x", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let a = sess.pool.var_term(a_var);
        let theta = sess.pool.ge(x, a);
        let mut params = cpr_smt::Model::new();
        params.set(a_var, 5i64);
        let patch = HolePatch { theta, params };
        let mut input = cpr_smt::Model::new();
        let xv = sess.pool.find_var("x").unwrap();
        let yv = sess.pool.find_var("y").unwrap();
        input.set(xv, 4i64);
        input.set(yv, 0i64);
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        assert!(run.hit_bug);
        assert!(matches!(
            run.outcome,
            cpr_lang::Outcome::SpecViolated { .. }
        ));

        // Refine T = [-10, 7] for patch 1 on this partition.
        let region = Region::full(vec![a_var], -10, 7);
        let phi = run.constraints_for_patch(&mut sess.pool, theta);
        let sigma = run.sigma.unwrap();
        let refined = refine_patch(&mut sess, &phi, &region, sigma, 0, &mut 0, &config);
        // Partition: ¬(x ≥ a) ∧ x = 4 (from concretization-free path, the
        // partition here is x < a with the x*y = 0 spec): every a > 4 lets
        // x = 4 slip into the division with y = 0 possible... the exact
        // remaining region must exclude values of a that leave a violating
        // (x, y) inside the partition. For x=4's path the violating models
        // force a > x for some x with x*y = 0 feasible, so the refined
        // region must have shrunk and must not be empty.
        assert!(refined.volume() < region.volume(), "no refinement happened");
        assert!(!refined.is_empty());
    }

    /// Concrete (parameterless) patches are removed outright when the spec
    /// can be violated on a feasible partition.
    #[test]
    fn concrete_patch_removed_on_violation() {
        let (mut sess, program, config) = setup();
        let theta = sess.pool.ff(); // never take the early return
        let patch = HolePatch {
            theta,
            params: cpr_smt::Model::new(),
        };
        let mut input = cpr_smt::Model::new();
        let xv = sess.pool.find_var("x").unwrap();
        let yv = sess.pool.find_var("y").unwrap();
        input.set(xv, 7i64);
        input.set(yv, 2i64);
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        assert!(run.hit_bug);

        let mut entries = vec![PoolEntry::new(AbstractPatch::concrete(0, theta))];
        let stats = reduce(&mut sess, &mut entries, &run, &config);
        // The partition ¬false = the whole input space reaching the bug;
        // x*y = 0 is violable there, and a parameterless patch cannot be
        // refined → removed.
        assert_eq!(stats.removed, 1);
        assert!(entries.is_empty());
    }

    /// The paper's patch 3 (`x == a || y == b`) refines to the correct
    /// patch a = 0 ∧ b = 0 given enough partitions; after one partition the
    /// region already shrinks towards b = 0.
    #[test]
    fn pair_patch_refines_towards_correct_values() {
        let (mut sess, program, config) = setup();
        let x = sess.pool.named_var("x", Sort::Int);
        let y = sess.pool.named_var("y", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let b_var = sess.pool.find_var("b").unwrap();
        let a = sess.pool.var_term(a_var);
        let b = sess.pool.var_term(b_var);
        let ex = sess.pool.eq(x, a);
        let ey = sess.pool.eq(y, b);
        let theta = sess.pool.or(ex, ey);
        let mut params = cpr_smt::Model::new();
        params.set(a_var, 5i64);
        params.set(b_var, 5i64);
        let patch = HolePatch { theta, params };
        let mut input = cpr_smt::Model::new();
        let xv = sess.pool.find_var("x").unwrap();
        let yv = sess.pool.find_var("y").unwrap();
        input.set(xv, 7i64);
        input.set(yv, 0i64);
        // x=7,y=0: guard (x==5 || y==5) is false → bug path → violation.
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        assert!(matches!(
            run.outcome,
            cpr_lang::Outcome::SpecViolated { .. }
        ));

        let region = Region::full(vec![a_var, b_var], -10, 10);
        let phi = run.constraints_for_patch(&mut sess.pool, theta);
        let refined = refine_patch(
            &mut sess,
            &phi,
            &region,
            run.sigma.unwrap(),
            0,
            &mut 0,
            &config,
        );
        assert!(refined.volume() < region.volume());
        // The correct parameters (a=0, b=0) must survive every refinement.
        assert!(refined.contains_point(&[0, 0]));
    }

    #[test]
    fn reduce_ranks_feasible_patches() {
        let (mut sess, program, config) = setup();
        // Execute with the always-false patch; pool holds a parameterized
        // patch that is feasible with the partition.
        let theta_exec = sess.pool.ff();
        let patch = HolePatch {
            theta: theta_exec,
            params: cpr_smt::Model::new(),
        };
        let mut input = cpr_smt::Model::new();
        let xv = sess.pool.find_var("x").unwrap();
        let yv = sess.pool.find_var("y").unwrap();
        input.set(xv, 7i64);
        input.set(yv, 2i64);
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));

        let x = sess.pool.named_var("x", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let a = sess.pool.var_term(a_var);
        let theta = sess.pool.ge(x, a);
        let mut entries = vec![PoolEntry::new(AbstractPatch::new(
            0,
            theta,
            vec![a_var],
            Region::full(vec![a_var], -10, 10),
        ))];
        let stats = reduce(&mut sess, &mut entries, &run, &config);
        assert_eq!(stats.feasible, 1);
        assert!(!entries.is_empty());
        assert!(entries[0].score.feasible >= 1);
        assert!(entries[0].score.bug_hits >= 1);
    }

    #[test]
    fn refine_on_unsat_partition_keeps_the_region() {
        // When the path constraint itself is unsatisfiable, ω_fail has no
        // model and the constraint is returned unchanged (Algorithm 3's
        // "needs no further refinement" exit).
        let (mut sess, _, config) = setup();
        let x = sess.pool.named_var("x", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let five = sess.pool.int(5);
        let contradiction = [sess.pool.gt(x, five), sess.pool.lt(x, five)];
        let zero = sess.pool.int(0);
        let sigma = sess.pool.ne(x, zero);
        let region = Region::full(vec![a_var], -10, 10);
        let refined = refine_patch(
            &mut sess,
            &contradiction,
            &region,
            sigma,
            0,
            &mut 0,
            &config,
        );
        assert_eq!(refined.volume(), region.volume());
    }

    #[test]
    fn refine_with_exhausted_budget_is_conservative() {
        // A zero call budget must leave the region untouched (the solver
        // timeout analogue) rather than dropping patches.
        let (mut sess, program, config) = setup();
        let x = sess.pool.named_var("x", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let a = sess.pool.var_term(a_var);
        let theta = sess.pool.ge(x, a);
        let mut params = cpr_smt::Model::new();
        params.set(a_var, 5i64);
        let patch = HolePatch { theta, params };
        let mut input = cpr_smt::Model::new();
        input.set(sess.pool.find_var("x").unwrap(), 4i64);
        input.set(sess.pool.find_var("y").unwrap(), 0i64);
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        let region = Region::full(vec![a_var], -10, 7);
        let phi = run.constraints_for_patch(&mut sess.pool, theta);
        let mut calls = u32::MAX - 1; // pretend the budget is already spent
        let refined = refine_patch(
            &mut sess,
            &phi,
            &region,
            run.sigma.unwrap(),
            0,
            &mut calls,
            &config,
        );
        assert_eq!(refined.volume(), region.volume());
    }

    #[test]
    fn point_regions_are_emptied_but_infeasible_patches_are_gated() {
        // Two single-point regions under the partition "guard did not fire"
        // (x < a) of the divide-by-zero subject:
        //
        // * a = 5 admits the violating x=4, y=0 → Algorithm 3 empties it;
        // * a = -10 makes the partition infeasible (x < -10 with x ≥ -10) —
        //   Algorithm 2's `IsSat(π)` gate must keep such a patch untouched
        //   rather than ever calling RefinePatch on it.
        let (mut sess, program, config) = setup();
        let x = sess.pool.named_var("x", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let a = sess.pool.var_term(a_var);
        let theta = sess.pool.ge(x, a);
        let mut params = cpr_smt::Model::new();
        params.set(a_var, 5i64);
        let patch = HolePatch { theta, params };
        let mut input = cpr_smt::Model::new();
        input.set(sess.pool.find_var("x").unwrap(), 4i64);
        input.set(sess.pool.find_var("y").unwrap(), 0i64);
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        let phi = run.constraints_for_patch(&mut sess.pool, theta);
        let sigma = run.sigma.unwrap();
        let point_region = |v: i64| {
            Region::from_boxes(
                vec![a_var],
                vec![cpr_smt::ParamBox::new(vec![cpr_smt::Interval::point(v)])],
            )
        };
        let refined = refine_patch(&mut sess, &phi, &point_region(5), sigma, 0, &mut 0, &config);
        assert!(refined.is_empty());

        // Through Algorithm 2, the infeasible patch survives intact.
        let mut entries = vec![PoolEntry::new(AbstractPatch::new(
            0,
            theta,
            vec![a_var],
            point_region(-10),
        ))];
        let stats = reduce(&mut sess, &mut entries, &run, &config);
        assert_eq!(stats.feasible, 0);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].patch.concrete_count(), 1);
        assert_eq!(entries[0].score.feasible, 0);
    }

    #[test]
    fn deletion_evidence_accumulates_for_tautology() {
        let (mut sess, program, config) = setup();
        let theta_true = sess.pool.tt();
        let patch = HolePatch {
            theta: theta_true,
            params: cpr_smt::Model::new(),
        };
        let mut input = cpr_smt::Model::new();
        let xv = sess.pool.find_var("x").unwrap();
        let yv = sess.pool.find_var("y").unwrap();
        input.set(xv, 7i64);
        input.set(yv, 2i64);
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        assert!(run.hit_patch);
        assert!(!run.hit_bug); // early return: functionality deleted

        let mut entries = vec![PoolEntry::new(AbstractPatch::concrete(0, theta_true))];
        let stats = reduce(&mut sess, &mut entries, &run, &config);
        assert_eq!(stats.feasible, 1);
        assert_eq!(entries[0].score.deletion_evidence, 1);
        // A tautology is never removed (it violates no spec) — only
        // deprioritized, exactly as the paper describes.
        assert_eq!(stats.removed, 0);
    }

    /// The pool walk is bit-identical at any thread count: same stats, same
    /// surviving entries, same refined regions, same scores.
    #[test]
    fn reduce_is_deterministic_across_thread_counts() {
        let run_with_threads = |threads: usize| {
            let (mut sess, program, mut config) = setup();
            config.threads = threads;
            let theta_exec = sess.pool.ff();
            let patch = HolePatch {
                theta: theta_exec,
                params: cpr_smt::Model::new(),
            };
            let mut input = cpr_smt::Model::new();
            input.set(sess.pool.find_var("x").unwrap(), 7i64);
            input.set(sess.pool.find_var("y").unwrap(), 0i64);
            let run =
                ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));

            // A mixed pool: parameterized single/pair patches + concretes.
            let x = sess.pool.named_var("x", Sort::Int);
            let y = sess.pool.named_var("y", Sort::Int);
            let a_var = sess.pool.find_var("a").unwrap();
            let b_var = sess.pool.find_var("b").unwrap();
            let a = sess.pool.var_term(a_var);
            let b = sess.pool.var_term(b_var);
            let ge_xa = sess.pool.ge(x, a);
            let eq_xa = sess.pool.eq(x, a);
            let eq_yb = sess.pool.eq(y, b);
            let pair = sess.pool.or(eq_xa, eq_yb);
            let tt = sess.pool.tt();
            let ff = sess.pool.ff();
            let mut entries = vec![
                PoolEntry::new(AbstractPatch::new(
                    0,
                    ge_xa,
                    vec![a_var],
                    Region::full(vec![a_var], -10, 10),
                )),
                PoolEntry::new(AbstractPatch::new(
                    1,
                    pair,
                    vec![a_var, b_var],
                    Region::full(vec![a_var, b_var], -10, 10),
                )),
                PoolEntry::new(AbstractPatch::concrete(2, tt)),
                PoolEntry::new(AbstractPatch::concrete(3, ff)),
                PoolEntry::new(AbstractPatch::new(
                    4,
                    eq_xa,
                    vec![a_var],
                    Region::full(vec![a_var], -10, 10),
                )),
            ];
            let stats = reduce(&mut sess, &mut entries, &run, &config);
            let snapshot: Vec<_> = entries
                .iter()
                .map(|e| {
                    (
                        e.patch.id,
                        e.patch.constraint.volume(),
                        e.patch.constraint.clone(),
                        e.score.feasible,
                        e.score.bug_hits,
                        e.score.deletion_evidence,
                    )
                })
                .collect();
            (stats, snapshot)
        };

        let serial = run_with_threads(1);
        for threads in [2, 4, 8] {
            let parallel = run_with_threads(threads);
            assert_eq!(serial.0, parallel.0, "stats differ at {threads} threads");
            assert_eq!(
                serial.1.len(),
                parallel.1.len(),
                "pool size differs at {threads} threads"
            );
            for (s, p) in serial.1.iter().zip(&parallel.1) {
                assert_eq!(s.0, p.0, "entry order differs at {threads} threads");
                assert_eq!(s.1, p.1, "volume differs at {threads} threads");
                assert_eq!(
                    format!("{:?}", s.2),
                    format!("{:?}", p.2),
                    "region differs at {threads} threads"
                );
                assert_eq!(
                    (s.3, s.4, s.5),
                    (p.3, p.4, p.5),
                    "score differs at {threads} threads"
                );
            }
        }
    }
}
