//! Patch-space reduction: the paper's Algorithm 2 (`Reduce`) and
//! Algorithm 3 (`RefinePatch`).
//!
//! Given one concolic run (a path constraint `φ_t`, the captured
//! specification `σ`, and the hit flags), `Reduce` walks the entire patch
//! pool: every patch whose formula is feasible with the partition is ranked,
//! and — when the bug location was exercised — refined so that no surviving
//! parameter value can violate `σ` anywhere in the partition. Refinement
//! works on the exact region representation of `T_ρ` via counterexample
//! splitting and merging.

use cpr_concolic::ConcolicResult;
use cpr_smt::{Region, SatResult, TermId};

use crate::problem::RepairConfig;
use crate::ranking::PoolEntry;
use crate::session::Session;

/// Statistics from one `Reduce` invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Patches whose parameter constraint was narrowed.
    pub refined: usize,
    /// Patches removed entirely (empty constraint after refinement).
    pub removed: usize,
    /// Patches found feasible with the partition (ranked up).
    pub feasible: usize,
    /// Solver calls spent.
    pub solver_calls: u64,
}

/// Algorithm 2: reduces the patch pool against one explored partition.
///
/// Entries whose constraint becomes empty are removed from `entries`.
pub fn reduce(
    sess: &mut Session,
    entries: &mut Vec<PoolEntry>,
    run: &ConcolicResult,
    config: &RepairConfig,
) -> ReduceStats {
    let mut stats = ReduceStats::default();
    let before = sess.solver.stats().queries;
    for entry in entries.iter_mut() {
        // π ← φ(X) ∧ ψ_ρ(X, A) ∧ T_ρ(A)
        let phi = run.constraints_for_patch(&mut sess.pool, entry.patch.theta);
        let t_term = entry.patch.constraint_term(&mut sess.pool);
        let mut pi = phi.clone();
        pi.push(t_term);
        match sess.check(&pi) {
            SatResult::Sat(_) => {
                stats.feasible += 1;
                if run.hit_bug || !run.asserts.is_empty() {
                    if let Some(sigma) = run.spec_term(&mut sess.pool) {
                        let refined = refine_patch(
                            sess,
                            &phi,
                            &entry.patch.constraint,
                            sigma,
                            0,
                            &mut 0,
                            config,
                        );
                        let old_volume = entry.patch.constraint.volume();
                        let new_volume = refined.volume();
                        if new_volume < old_volume {
                            stats.refined += 1;
                        }
                        entry.patch = entry.patch.with_constraint(refined);
                    }
                }
                // UpdateRanking(ρ): feasibility evidence, plus bug-location
                // bonus, plus the functionality-deletion check.
                if !entry.patch.is_exhausted() {
                    entry.score.feasible += 1;
                    if run.hit_bug {
                        entry.score.bug_hits += 1;
                    }
                    if config.deletion_check && deletion_like(sess, entry, run, config) {
                        entry.score.deletion_evidence += 1;
                    }
                }
            }
            SatResult::Unsat | SatResult::Unknown => {
                // Cannot reason about ρ on this partition; ranking unchanged.
            }
        }
    }
    let removed_before = entries.len();
    entries.retain(|e| !e.patch.is_exhausted());
    stats.removed = removed_before - entries.len();
    stats.solver_calls = sess.solver.stats().queries - before;
    stats
}

/// Functionality-deletion heuristic (§3.5.3): on the partition defined by
/// the *non-patch* steps of the path, does the patch force a single branch
/// direction for every input? Tautology/contradiction guards always do.
///
/// With [`RepairConfig::model_counting`] the check is refined as the paper
/// suggests: the *proportion* of partition inputs redirected by the patch
/// is computed by exact branch-and-count (under the patch's representative
/// parameters), and redirection above `deletion_ratio` counts as evidence.
fn deletion_like(
    sess: &mut Session,
    entry: &PoolEntry,
    run: &ConcolicResult,
    config: &RepairConfig,
) -> bool {
    // Collect the partition without the patch branch itself.
    let mut base: Vec<TermId> = Vec::new();
    let mut psi_oriented: Option<TermId> = None;
    let phi = run.constraints_for_patch(&mut sess.pool, entry.patch.theta);
    for (step, c) in run.path.iter().zip(&phi) {
        if step.from_patch() {
            if psi_oriented.is_none() {
                psi_oriented = Some(*c);
            }
        } else {
            base.push(*c);
        }
    }
    let Some(psi) = psi_oriented else {
        return false;
    };
    if config.model_counting {
        // Fix parameters to the representative so the count ranges over
        // program inputs only.
        let Some(rep) = entry.patch.representative() else {
            return false;
        };
        let mut map = std::collections::HashMap::new();
        for (v, val) in rep.iter() {
            let c = sess.pool.int(val.as_int().unwrap_or(0));
            map.insert(v, c);
        }
        let base_inst: Vec<TermId> = base
            .iter()
            .map(|&c| sess.pool.substitute(c, &map))
            .collect();
        let psi_inst = sess.pool.substitute(psi, &map);
        let total = sess
            .solver
            .count_models(&sess.pool, &base_inst, &sess.domains);
        if total.hi == 0 {
            return false;
        }
        // The partition was recorded with ψ oriented *along* the executed
        // path; the redirected inputs are those taking the opposite side.
        let not_psi = sess.pool.not(psi_inst);
        let mut away = base_inst.clone();
        away.push(not_psi);
        let redirected = sess.solver.count_models(&sess.pool, &away, &sess.domains);
        let ratio = 1.0 - redirected.estimate() / total.estimate().max(1.0);
        return ratio >= config.deletion_ratio;
    }
    let t_term = entry.patch.constraint_term(&mut sess.pool);
    base.push(t_term);
    // If the *other* direction is infeasible on this partition, the patch is
    // constant here: evidence of functionality deletion.
    let not_psi = sess.pool.not(psi);
    let mut q = base.clone();
    q.push(not_psi);
    matches!(sess.check(&q), SatResult::Unsat)
}

/// Algorithm 3: refines the parameter constraint `T_ρ` (given as a
/// [`Region`]) so that the specification `σ` can no longer be violated on
/// the partition `φ` (which must already be re-targeted at this patch, i.e.
/// include `ψ_ρ`). Returns the refined region; an empty region means the
/// patch must be discarded.
pub fn refine_patch(
    sess: &mut Session,
    phi: &[TermId],
    region: &Region,
    sigma: TermId,
    depth: u32,
    calls: &mut u32,
    config: &RepairConfig,
) -> Region {
    if depth >= config.max_refine_depth || *calls >= config.max_refine_calls {
        // Budget exhausted: keep the region (conservative, mirrors a solver
        // timeout in the original tool).
        return region.clone();
    }
    let region_term = region.to_term(&mut sess.pool);
    let not_sigma = sess.pool.not(sigma);

    // ω_pass1 ← φ(X) ∧ σ(X)
    *calls += 1;
    let mut pass1 = phi.to_vec();
    pass1.push(sigma);
    if sess.check(&pass1).is_sat() {
        // ω_pass2 ← φ ∧ ψ_ρ ∧ T_ρ ∧ σ
        *calls += 1;
        let mut pass2 = phi.to_vec();
        pass2.push(region_term);
        pass2.push(sigma);
        if sess.check(&pass2).is_unsat() {
            // No parameter value in T_ρ can make the spec pass: discard.
            return Region::empty(region.params().to_vec());
        }
    }

    // ω_fail ← φ ∧ ψ_ρ ∧ T_ρ ∧ ¬σ
    *calls += 1;
    let mut fail = phi.to_vec();
    fail.push(region_term);
    fail.push(not_sigma);
    match sess.check(&fail) {
        SatResult::Sat(model) => {
            // Extract the counterexample parameter point m_A.
            let point: Vec<i64> = region
                .params()
                .iter()
                .map(|&p| model.int(p).unwrap_or(0))
                .collect();
            if !region.contains_point(&point) && !region.params().is_empty() {
                // Defensive: a model outside the region (should not happen);
                // stop refining rather than loop.
                return region.clone();
            }
            let subregions = region.split_at(&point);
            if subregions.is_empty() {
                return Region::empty(region.params().to_vec());
            }
            let mut kept: Vec<Region> = Vec::with_capacity(subregions.len());
            for r in subregions {
                // Guard: only recurse into regions compatible with the path.
                *calls += 1;
                let r_term = r.to_term(&mut sess.pool);
                let mut pi = phi.to_vec();
                pi.push(r_term);
                match sess.check(&pi) {
                    SatResult::Sat(_) | SatResult::Unknown => {
                        let refined =
                            refine_patch(sess, phi, &r, sigma, depth + 1, calls, config);
                        if !refined.is_empty() {
                            kept.push(refined);
                        }
                    }
                    SatResult::Unsat => {
                        // Cannot reason about this region here; keep it.
                        kept.push(r);
                    }
                }
            }
            Region::union(region.params().to_vec(), kept).merged()
        }
        // No counterexample: the constraint needs no further refinement.
        SatResult::Unsat | SatResult::Unknown => region.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{test_input, RepairProblem};
    use cpr_concolic::{ConcolicExecutor, HolePatch};
    use cpr_lang::{check, parse};
    use cpr_smt::Sort;
    use cpr_synth::{AbstractPatch, ComponentSet, SynthConfig};

    /// The running example of the paper: CVE-2016-3623-style divide by zero
    /// guarded by a condition hole.
    const DIV_SRC: &str = "program cve_2016_3623 {
        input x in [-10, 10];
        input y in [-10, 10];
        if (__patch_cond__(x, y)) { return 1; }
        bug div_by_zero requires (x * y != 0);
        return 100 / (x * y);
      }";

    fn setup() -> (Session, cpr_lang::Program, RepairConfig) {
        let program = parse(DIV_SRC).unwrap();
        check(&program).unwrap();
        let problem = RepairProblem::new(
            "demo",
            program.clone(),
            ComponentSet::new()
                .with_all_comparisons()
                .with_logic()
                .with_variables(["x", "y"]),
            SynthConfig::default(),
            vec![test_input(&[("x", 7), ("y", 0)])],
        );
        let config = RepairConfig::quick();
        let sess = Session::new(&problem, &config);
        (sess, program, config)
    }

    /// Reproduces the paper's §2 refinement of patch 1: exploring partition
    /// P1 (x > 3 ∧ y ≤ 5) refines `x ≥ a, a ∈ [-10, 7]` to `a ∈ [-10, 4]`.
    #[test]
    fn paper_example_patch1_refinement() {
        let (mut sess, program, config) = setup();
        // θ1 := x >= a with representative a = 7 (so x=7,y=0 passes the
        // guard? No: we need the partition that reaches the bug. Use an
        // input that fails the guard: x=4,y=0 with a=5 → 4 >= 5 false.)
        let x = sess.pool.named_var("x", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let a = sess.pool.var_term(a_var);
        let theta = sess.pool.ge(x, a);
        let mut params = cpr_smt::Model::new();
        params.set(a_var, 5i64);
        let patch = HolePatch { theta, params };
        let mut input = cpr_smt::Model::new();
        let xv = sess.pool.find_var("x").unwrap();
        let yv = sess.pool.find_var("y").unwrap();
        input.set(xv, 4i64);
        input.set(yv, 0i64);
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        assert!(run.hit_bug);
        assert!(matches!(run.outcome, cpr_lang::Outcome::SpecViolated { .. }));

        // Refine T = [-10, 7] for patch 1 on this partition.
        let region = Region::full(vec![a_var], -10, 7);
        let phi = run.constraints_for_patch(&mut sess.pool, theta);
        let sigma = run.sigma.unwrap();
        let refined = refine_patch(&mut sess, &phi, &region, sigma, 0, &mut 0, &config);
        // Partition: ¬(x ≥ a) ∧ x = 4 (from concretization-free path, the
        // partition here is x < a with the x*y = 0 spec): every a > 4 lets
        // x = 4 slip into the division with y = 0 possible... the exact
        // remaining region must exclude values of a that leave a violating
        // (x, y) inside the partition. For x=4's path the violating models
        // force a > x for some x with x*y = 0 feasible, so the refined
        // region must have shrunk and must not be empty.
        assert!(refined.volume() < region.volume(), "no refinement happened");
        assert!(!refined.is_empty());
    }

    /// Concrete (parameterless) patches are removed outright when the spec
    /// can be violated on a feasible partition.
    #[test]
    fn concrete_patch_removed_on_violation() {
        let (mut sess, program, config) = setup();
        let theta = sess.pool.ff(); // never take the early return
        let patch = HolePatch {
            theta,
            params: cpr_smt::Model::new(),
        };
        let mut input = cpr_smt::Model::new();
        let xv = sess.pool.find_var("x").unwrap();
        let yv = sess.pool.find_var("y").unwrap();
        input.set(xv, 7i64);
        input.set(yv, 2i64);
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        assert!(run.hit_bug);

        let mut entries = vec![PoolEntry::new(AbstractPatch::concrete(0, theta))];
        let stats = reduce(&mut sess, &mut entries, &run, &config);
        // The partition ¬false = the whole input space reaching the bug;
        // x*y = 0 is violable there, and a parameterless patch cannot be
        // refined → removed.
        assert_eq!(stats.removed, 1);
        assert!(entries.is_empty());
    }

    /// The paper's patch 3 (`x == a || y == b`) refines to the correct
    /// patch a = 0 ∧ b = 0 given enough partitions; after one partition the
    /// region already shrinks towards b = 0.
    #[test]
    fn pair_patch_refines_towards_correct_values() {
        let (mut sess, program, config) = setup();
        let x = sess.pool.named_var("x", Sort::Int);
        let y = sess.pool.named_var("y", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let b_var = sess.pool.find_var("b").unwrap();
        let a = sess.pool.var_term(a_var);
        let b = sess.pool.var_term(b_var);
        let ex = sess.pool.eq(x, a);
        let ey = sess.pool.eq(y, b);
        let theta = sess.pool.or(ex, ey);
        let mut params = cpr_smt::Model::new();
        params.set(a_var, 5i64);
        params.set(b_var, 5i64);
        let patch = HolePatch { theta, params };
        let mut input = cpr_smt::Model::new();
        let xv = sess.pool.find_var("x").unwrap();
        let yv = sess.pool.find_var("y").unwrap();
        input.set(xv, 7i64);
        input.set(yv, 0i64);
        // x=7,y=0: guard (x==5 || y==5) is false → bug path → violation.
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        assert!(matches!(run.outcome, cpr_lang::Outcome::SpecViolated { .. }));

        let region = Region::full(vec![a_var, b_var], -10, 10);
        let phi = run.constraints_for_patch(&mut sess.pool, theta);
        let refined = refine_patch(
            &mut sess,
            &phi,
            &region,
            run.sigma.unwrap(),
            0,
            &mut 0,
            &config,
        );
        assert!(refined.volume() < region.volume());
        // The correct parameters (a=0, b=0) must survive every refinement.
        assert!(refined.contains_point(&[0, 0]));
    }

    #[test]
    fn reduce_ranks_feasible_patches() {
        let (mut sess, program, config) = setup();
        // Execute with the always-false patch; pool holds a parameterized
        // patch that is feasible with the partition.
        let theta_exec = sess.pool.ff();
        let patch = HolePatch {
            theta: theta_exec,
            params: cpr_smt::Model::new(),
        };
        let mut input = cpr_smt::Model::new();
        let xv = sess.pool.find_var("x").unwrap();
        let yv = sess.pool.find_var("y").unwrap();
        input.set(xv, 7i64);
        input.set(yv, 2i64);
        let run =
            ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));

        let x = sess.pool.named_var("x", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let a = sess.pool.var_term(a_var);
        let theta = sess.pool.ge(x, a);
        let mut entries = vec![PoolEntry::new(AbstractPatch::new(
            0,
            theta,
            vec![a_var],
            Region::full(vec![a_var], -10, 10),
        ))];
        let stats = reduce(&mut sess, &mut entries, &run, &config);
        assert_eq!(stats.feasible, 1);
        assert!(!entries.is_empty());
        assert!(entries[0].score.feasible >= 1);
        assert!(entries[0].score.bug_hits >= 1);
    }

    #[test]
    fn refine_on_unsat_partition_keeps_the_region() {
        // When the path constraint itself is unsatisfiable, ω_fail has no
        // model and the constraint is returned unchanged (Algorithm 3's
        // "needs no further refinement" exit).
        let (mut sess, _, config) = setup();
        let x = sess.pool.named_var("x", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let five = sess.pool.int(5);
        let contradiction = [sess.pool.gt(x, five), sess.pool.lt(x, five)];
        let zero = sess.pool.int(0);
        let sigma = sess.pool.ne(x, zero);
        let region = Region::full(vec![a_var], -10, 10);
        let refined = refine_patch(
            &mut sess,
            &contradiction,
            &region,
            sigma,
            0,
            &mut 0,
            &config,
        );
        assert_eq!(refined.volume(), region.volume());
    }

    #[test]
    fn refine_with_exhausted_budget_is_conservative() {
        // A zero call budget must leave the region untouched (the solver
        // timeout analogue) rather than dropping patches.
        let (mut sess, program, config) = setup();
        let x = sess.pool.named_var("x", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let a = sess.pool.var_term(a_var);
        let theta = sess.pool.ge(x, a);
        let mut params = cpr_smt::Model::new();
        params.set(a_var, 5i64);
        let patch = HolePatch { theta, params };
        let mut input = cpr_smt::Model::new();
        input.set(sess.pool.find_var("x").unwrap(), 4i64);
        input.set(sess.pool.find_var("y").unwrap(), 0i64);
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        let region = Region::full(vec![a_var], -10, 7);
        let phi = run.constraints_for_patch(&mut sess.pool, theta);
        let mut calls = u32::MAX - 1; // pretend the budget is already spent
        let refined = refine_patch(
            &mut sess,
            &phi,
            &region,
            run.sigma.unwrap(),
            0,
            &mut calls,
            &config,
        );
        assert_eq!(refined.volume(), region.volume());
    }

    #[test]
    fn point_regions_are_emptied_but_infeasible_patches_are_gated() {
        // Two single-point regions under the partition "guard did not fire"
        // (x < a) of the divide-by-zero subject:
        //
        // * a = 5 admits the violating x=4, y=0 → Algorithm 3 empties it;
        // * a = -10 makes the partition infeasible (x < -10 with x ≥ -10) —
        //   Algorithm 2's `IsSat(π)` gate must keep such a patch untouched
        //   rather than ever calling RefinePatch on it.
        let (mut sess, program, config) = setup();
        let x = sess.pool.named_var("x", Sort::Int);
        let a_var = sess.pool.find_var("a").unwrap();
        let a = sess.pool.var_term(a_var);
        let theta = sess.pool.ge(x, a);
        let mut params = cpr_smt::Model::new();
        params.set(a_var, 5i64);
        let patch = HolePatch { theta, params };
        let mut input = cpr_smt::Model::new();
        input.set(sess.pool.find_var("x").unwrap(), 4i64);
        input.set(sess.pool.find_var("y").unwrap(), 0i64);
        let run = ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        let phi = run.constraints_for_patch(&mut sess.pool, theta);
        let sigma = run.sigma.unwrap();
        let point_region = |v: i64| {
            Region::from_boxes(
                vec![a_var],
                vec![cpr_smt::ParamBox::new(vec![cpr_smt::Interval::point(v)])],
            )
        };
        let refined = refine_patch(&mut sess, &phi, &point_region(5), sigma, 0, &mut 0, &config);
        assert!(refined.is_empty());

        // Through Algorithm 2, the infeasible patch survives intact.
        let mut entries = vec![PoolEntry::new(AbstractPatch::new(
            0,
            theta,
            vec![a_var],
            point_region(-10),
        ))];
        let stats = reduce(&mut sess, &mut entries, &run, &config);
        assert_eq!(stats.feasible, 0);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].patch.concrete_count(), 1);
        assert_eq!(entries[0].score.feasible, 0);
    }

    #[test]
    fn deletion_evidence_accumulates_for_tautology() {
        let (mut sess, program, config) = setup();
        let theta_true = sess.pool.tt();
        let patch = HolePatch {
            theta: theta_true,
            params: cpr_smt::Model::new(),
        };
        let mut input = cpr_smt::Model::new();
        let xv = sess.pool.find_var("x").unwrap();
        let yv = sess.pool.find_var("y").unwrap();
        input.set(xv, 7i64);
        input.set(yv, 2i64);
        let run =
            ConcolicExecutor::new().execute(&mut sess.pool, &program, &input, Some(&patch));
        assert!(run.hit_patch);
        assert!(!run.hit_bug); // early return: functionality deleted

        let mut entries = vec![PoolEntry::new(AbstractPatch::concrete(0, theta_true))];
        let stats = reduce(&mut sess, &mut entries, &run, &config);
        assert_eq!(stats.feasible, 1);
        assert_eq!(entries[0].score.deletion_evidence, 1);
        // A tautology is never removed (it violates no spec) — only
        // deprioritized, exactly as the paper describes.
        assert_eq!(stats.removed, 0);
    }
}
