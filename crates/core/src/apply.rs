//! Patch application: splicing a synthesized patch expression back into the
//! subject program and rendering the repaired source.
//!
//! This is the inverse of [`lower_expr`](crate::lower_expr): solver terms
//! over program variables are *unlowered* into subject-language expressions,
//! with template parameters substituted by concrete values, and the
//! program's patch hole is replaced by the result.

use cpr_lang::{ast::Span, BinOp, Expr, Program, Stmt, UnOp};
use cpr_smt::{Model, TermData, TermId, TermPool};

/// Converts a solver term back into a subject-language expression.
///
/// # Errors
///
/// Returns a message for terms with no subject-language counterpart
/// (`ite`, which only arises from hand-written SMT-LIB templates).
pub fn term_to_expr(pool: &TermPool, t: TermId) -> Result<Expr, String> {
    let span = Span::default();
    Ok(match pool.data(t) {
        TermData::BoolConst(b) => Expr::Bool(b, span),
        TermData::IntConst(v) => Expr::Int(v, span),
        TermData::Var(v) => Expr::Var(pool.var_name(v).to_owned(), span),
        TermData::Not(a) => Expr::Unary(UnOp::Not, Box::new(term_to_expr(pool, a)?), span),
        TermData::Neg(a) => Expr::Unary(UnOp::Neg, Box::new(term_to_expr(pool, a)?), span),
        TermData::And(a, b) => bin(pool, BinOp::And, a, b)?,
        TermData::Or(a, b) => bin(pool, BinOp::Or, a, b)?,
        TermData::Cmp(op, a, b) => {
            let op = match op {
                cpr_smt::CmpOp::Eq => BinOp::Eq,
                cpr_smt::CmpOp::Ne => BinOp::Ne,
                cpr_smt::CmpOp::Lt => BinOp::Lt,
                cpr_smt::CmpOp::Le => BinOp::Le,
                cpr_smt::CmpOp::Gt => BinOp::Gt,
                cpr_smt::CmpOp::Ge => BinOp::Ge,
            };
            bin(pool, op, a, b)?
        }
        TermData::Arith(op, a, b) => {
            let op = match op {
                cpr_smt::ArithOp::Add => BinOp::Add,
                cpr_smt::ArithOp::Sub => BinOp::Sub,
                cpr_smt::ArithOp::Mul => BinOp::Mul,
                cpr_smt::ArithOp::Div => BinOp::Div,
                cpr_smt::ArithOp::Rem => BinOp::Rem,
            };
            bin(pool, op, a, b)?
        }
        TermData::Ite(..) => return Err("`ite` has no subject-language expression form".into()),
    })
}

fn bin(pool: &TermPool, op: BinOp, a: TermId, b: TermId) -> Result<Expr, String> {
    Ok(Expr::Binary(
        op,
        Box::new(term_to_expr(pool, a)?),
        Box::new(term_to_expr(pool, b)?),
        Span::default(),
    ))
}

/// Produces the repaired program: the patch template `theta`, with its
/// parameters substituted by the concrete values in `binding`, spliced into
/// the program's patch hole.
///
/// # Errors
///
/// Returns a message when the program has no hole or the instantiated
/// template cannot be rendered in the subject language.
pub fn apply_patch(
    program: &Program,
    pool: &mut TermPool,
    theta: TermId,
    binding: &Model,
) -> Result<Program, String> {
    if program.hole().is_none() {
        return Err("program has no patch hole".into());
    }
    // Instantiate the template parameters.
    let mut map = std::collections::HashMap::new();
    for (v, val) in binding.iter() {
        let c = pool.int(val.as_int().unwrap_or(0));
        map.insert(v, c);
    }
    let instantiated = pool.substitute(theta, &map);
    let replacement = term_to_expr(pool, instantiated)?;

    let mut patched = program.clone();
    for stmt in &mut patched.body {
        replace_in_stmt(stmt, &replacement);
    }
    Ok(patched)
}

fn replace_in_stmt(stmt: &mut Stmt, replacement: &Expr) {
    match stmt {
        Stmt::Decl { init: Some(e), .. } => replace_in_expr(e, replacement),
        Stmt::Decl { .. } => {}
        Stmt::Assign { value, .. } => replace_in_expr(value, replacement),
        Stmt::AssignIndex { index, value, .. } => {
            replace_in_expr(index, replacement);
            replace_in_expr(value, replacement);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            replace_in_expr(cond, replacement);
            for s in then_body {
                replace_in_stmt(s, replacement);
            }
            for s in else_body {
                replace_in_stmt(s, replacement);
            }
        }
        Stmt::While { cond, body, .. } => {
            replace_in_expr(cond, replacement);
            for s in body {
                replace_in_stmt(s, replacement);
            }
        }
        Stmt::Return { value, .. } => replace_in_expr(value, replacement),
        Stmt::Assert { cond, .. } | Stmt::Assume { cond, .. } => replace_in_expr(cond, replacement),
        Stmt::Bug { spec, .. } => replace_in_expr(spec, replacement),
    }
}

fn replace_in_expr(e: &mut Expr, replacement: &Expr) {
    match e {
        Expr::Hole(..) => *e = replacement.clone(),
        Expr::Int(..) | Expr::Bool(..) | Expr::Var(..) => {}
        Expr::Index(_, idx, _) => replace_in_expr(idx, replacement),
        Expr::Unary(_, inner, _) => replace_in_expr(inner, replacement),
        Expr::Binary(_, a, b, _) => {
            replace_in_expr(a, replacement);
            replace_in_expr(b, replacement);
        }
        Expr::Call(_, args, _) | Expr::UserCall(_, args, _) => {
            for a in args {
                replace_in_expr(a, replacement);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_expr_src;
    use cpr_lang::{check, parse, pretty, Interp, Outcome};
    use cpr_smt::Sort;
    use std::collections::HashMap;

    const SRC: &str = "program p {
        input x in [-10, 10];
        input y in [-10, 10];
        if (__patch_cond__(x, y)) { return 1; }
        bug div_by_zero requires (x * y != 0);
        return 100 / (x * y);
      }";

    #[test]
    fn term_to_expr_roundtrips_through_lowering() {
        let mut pool = TermPool::new();
        for src in [
            "x == 0 || y == 0",
            "x + y * 2 - abs_free > 0",
            "!(x < y) && x != 3",
        ] {
            let t = lower_expr_src(&mut pool, src).unwrap();
            let e = term_to_expr(&pool, t).unwrap();
            let t2 = crate::lower_expr(&mut pool, &e).unwrap();
            assert_eq!(t, t2, "{src}");
        }
    }

    #[test]
    fn ite_is_rejected() {
        let mut pool = TermPool::new();
        let t = pool.parse_term("(ite (> x 0) x (- x))").unwrap();
        assert!(term_to_expr(&pool, t).is_err());
    }

    #[test]
    fn applied_patch_repairs_and_reparses() {
        let program = parse(SRC).unwrap();
        check(&program).unwrap();
        let mut pool = TermPool::new();
        // Abstract patch x == a || y == b with binding a=0, b=0.
        let theta = pool.parse_term("(or (= x a) (= y b))").unwrap();
        let a = pool.find_var("a").unwrap();
        let b = pool.find_var("b").unwrap();
        let mut binding = Model::new();
        binding.set(a, 0i64);
        binding.set(b, 0i64);

        let patched = apply_patch(&program, &mut pool, theta, &binding).unwrap();
        // The patched program is well-formed and hole-free.
        check(&patched).unwrap();
        assert!(patched.hole().is_none());
        let printed = pretty(&patched);
        assert!(printed.contains("((x == 0) || (y == 0))"), "{printed}");
        let reparsed = parse(&printed).unwrap();
        check(&reparsed).unwrap();

        // And it actually repairs the exploit.
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), 7i64);
        inputs.insert("y".to_string(), 0i64);
        let r = Interp::new().run(&patched, &inputs, None);
        assert_eq!(r.outcome, Outcome::Returned(1));
        // Non-crashing inputs still flow through the division.
        inputs.insert("y".to_string(), 2i64);
        let r = Interp::new().run(&patched, &inputs, None);
        assert_eq!(r.outcome, Outcome::Returned(100 / 14));
    }

    #[test]
    fn expression_holes_are_replaced_too() {
        let program = parse(
            "program p {
               input n in [0, 9];
               var s: int = 0;
               s = __patch_expr__(n);
               bug b requires (s >= 0);
               return s;
             }",
        )
        .unwrap();
        check(&program).unwrap();
        let mut pool = TermPool::new();
        let n = pool.named_var("n", Sort::Int);
        let one = pool.int(1);
        let theta = pool.add(n, one);
        let patched = apply_patch(&program, &mut pool, theta, &Model::new()).unwrap();
        let printed = pretty(&patched);
        assert!(printed.contains("s = (n + 1);"), "{printed}");
        check(&patched).unwrap();
    }

    #[test]
    fn missing_hole_is_an_error() {
        let program = parse("program p { input x in [0, 5]; return x; }").unwrap();
        let mut pool = TermPool::new();
        let t = pool.tt();
        assert!(apply_patch(&program, &mut pool, t, &Model::new()).is_err());
    }
}
