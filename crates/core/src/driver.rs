//! The resumable repair driver: Algorithm 1 as a stepwise state machine.
//!
//! [`crate::repair`] used to be one blocking function; it is now a thin
//! loop over [`RepairDriver`], which exposes the repair loop one iteration
//! at a time (`new` → `step`* → `finish`) and can checkpoint its complete
//! anytime state to bytes at any step boundary ([`RepairDriver::snapshot`])
//! and restore it bit-identically ([`RepairDriver::resume`]). This is what
//! lets `cpr-serve` pause, cancel, migrate and resume repair jobs without
//! changing a single field of the final [`crate::RepairReport`].
//!
//! # What a snapshot contains
//!
//! Everything the remaining iterations depend on: the hash-consed term
//! pool (ids are creation-order indices, so every stored `TermId`/`VarId`
//! stays meaningful), the patch pool entries with their parameter-
//! constraint regions and ranking evidence, the input queue in internal
//! heap order (preserving the pop order of tied candidates), both
//! seen-prefix sets, the UNSAT-prefix store in FIFO order, the anytime
//! history, coverage partitions, all counters, and the accumulated solver
//! statistics.
//!
//! # What a snapshot deliberately omits
//!
//! * The **solver query cache** — it is a warm-start optimization only.
//!   Verdicts are pure functions of canonical queries and the `queries`
//!   counter counts every check *including* cache hits, so a cold cache
//!   after resume re-derives identical verdicts and identical report
//!   counters (only cache hit/miss internals differ, which no report
//!   field exposes).
//! * The **problem and config** — the caller supplies them to `resume`;
//!   the header's subject digest plus a pool-prefix check reject a
//!   snapshot replayed against the wrong subject.
//! * The **executor** — rebuilt from config; it holds no run state.
//! * **Wall-clock instants** — elapsed time is accumulated as durations,
//!   so a snapshot taken on one machine resumes on another.

use std::time::Instant;

use cpr_concolic::{CandidateInput, HolePatch, InputQueue, SeenPrefixes};
use cpr_smt::wire::{self, ByteReader, ByteWriter, WireError};
use cpr_smt::{Model, Region, TermId, TermPool, VarId};
use cpr_synth::AbstractPatch;

use crate::expand::expand;
use crate::problem::{RepairConfig, RepairProblem};
use crate::ranking::{rank_order, PoolEntry, RankScore};
use crate::reduce::reduce;
use crate::repair::{pool_volume, ratio, select_patch, RankedPatch, RepairReport};
use crate::session::Session;
use crate::synthesize::build_patch_pool;

/// Leading magic of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"CPRS";
/// Current snapshot format version. Bumped to 2 when `SolverStats` gained
/// the incremental-solving counters (frames, trail restores, no-goods,
/// batched queries), to 3 when it gained the fleet-cache counters (hits,
/// misses, no-good hits, stores, load errors) — each change altered the
/// embedded stats codec shape — and to 4 when the payload gained the
/// injected-inputs log ([`RepairDriver::inject_input`]).
pub const SNAPSHOT_VERSION: u32 = 4;

/// Oldest snapshot format version [`RepairDriver::resume`] still loads.
/// Version 3 predates the injected-inputs log; such snapshots load with an
/// empty injection log (there was nothing to inject back then) and
/// re-encode as the current version.
pub const MIN_SNAPSHOT_VERSION: u32 = 3;

/// Why a snapshot could not be loaded. Loading never panics: every
/// malformed, truncated, or mismatched input maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input does not start with the `CPRS` magic bytes.
    BadMagic,
    /// The format version is not one this build understands.
    UnsupportedVersion(u32),
    /// The snapshot was taken for a different subject (name, program
    /// source, or test inputs differ).
    SubjectMismatch,
    /// The input ends before the declared payload and checksum.
    Truncated,
    /// The payload bytes do not match the trailing checksum.
    ChecksumMismatch,
    /// The payload decoded to ids that do not extend the session this
    /// problem/config pair builds — the snapshot was taken under a
    /// different configuration.
    PoolMismatch,
    /// The payload itself is structurally malformed.
    Corrupt(WireError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a CPR snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::SubjectMismatch => {
                write!(f, "snapshot was taken for a different subject")
            }
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::PoolMismatch => write!(
                f,
                "snapshot does not extend the session its problem/config builds"
            ),
            SnapshotError::Corrupt(e) => write!(f, "snapshot payload corrupt: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Corrupt(e)
    }
}

/// Why the repair loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every abstract patch was refuted — the pool is empty.
    PoolEmpty,
    /// The iteration budget ([`RepairConfig::max_iterations`]) ran out.
    IterationBudget,
    /// The wall-clock budget ([`RepairConfig::max_millis`]) ran out.
    TimeBudget,
    /// The input queue drained — the reachable input space is exhausted.
    InputsExhausted,
}

impl StopReason {
    /// Stable lowercase name (used by the serve protocol).
    pub fn name(self) -> &'static str {
        match self {
            StopReason::PoolEmpty => "pool_empty",
            StopReason::IterationBudget => "iteration_budget",
            StopReason::TimeBudget => "time_budget",
            StopReason::InputsExhausted => "inputs_exhausted",
        }
    }
}

/// Result of one [`RepairDriver::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The loop made one iteration and can continue.
    Running,
    /// The loop is finished; further `step` calls return the same status.
    Done(StopReason),
}

/// The repair loop as an explicit state machine. See the module docs for
/// the snapshot contract.
#[derive(Debug)]
pub struct RepairDriver {
    problem: RepairProblem,
    config: RepairConfig,
    sess: Session,
    entries: Vec<PoolEntry>,
    queue: InputQueue,
    seen_paths: SeenPrefixes,
    seen_prefixes: SeenPrefixes,
    history: Vec<u128>,
    coverage_paths: Vec<(Vec<TermId>, Model)>,
    p_init: u128,
    abstract_init: usize,
    paths_explored: usize,
    paths_skipped: usize,
    iterations: usize,
    inputs_generated: usize,
    generated_runs: usize,
    generated_patch_hits: usize,
    generated_bug_hits: usize,
    queries_screened: u64,
    /// Nanoseconds spent inside the exploration loop (budget clock).
    explore_nanos: u64,
    /// Nanoseconds spent in the driver overall (reported wall clock).
    elapsed_nanos: u64,
    stop: Option<StopReason>,
    /// Inputs injected between steps ([`RepairDriver::inject_input`]), as
    /// sorted `(name, value)` pairs in arrival order. Part of the snapshot
    /// payload (format v4), so injection count — and with it the score of
    /// the *next* injection — survives a park/resume cycle.
    injected: Vec<Vec<(String, i64)>>,
}

/// Priority band for injected inputs: strictly below the provided seeds
/// (scored `100 - i`) and strictly above everything generational search
/// can produce (`score_candidate < 50`). As long as an injection arrives
/// while inputs of the provided band are still queued, the run is
/// bit-identical to one where the same input was injected up front — the
/// determinism contract `tests/determinism.rs` proves.
const INJECTED_SCORE_BASE: i64 = 80;

/// Floor of the injected band; also the driver's provided/generated
/// boundary (a candidate scoring below this counts as generated).
const INJECTED_SCORE_FLOOR: i64 = 50;

impl RepairDriver {
    /// Phase 1: builds the patch pool and seeds the input queue with the
    /// provided tests. Always runs to completion so that `|P_Init|` is
    /// well-defined for every subject; budgets apply to `step` only.
    pub fn new(problem: RepairProblem, config: RepairConfig) -> RepairDriver {
        let registry = if config.metrics {
            cpr_obs::global().clone()
        } else {
            cpr_obs::MetricsRegistry::disabled()
        };
        RepairDriver::with_metrics(problem, config, &registry)
    }

    /// [`RepairDriver::new`] recording metrics into an explicit registry
    /// instead of the process-wide one (ignoring
    /// [`RepairConfig::metrics`]); the injection point for tests that
    /// assert on counter totals without cross-test interference.
    pub fn with_metrics(
        problem: RepairProblem,
        config: RepairConfig,
        registry: &cpr_obs::MetricsRegistry,
    ) -> RepairDriver {
        let t0 = Instant::now();
        let mut sess = Session::with_metrics(&problem, &config, registry);
        let synth_timer = sess.obs.synthesize_nanos.start();
        let (entries, synth_stats) = build_patch_pool(&mut sess, &problem, &config);
        sess.obs.synthesize_nanos.stop(synth_timer);
        sess.obs.patches_synthesized.add(entries.len() as u64);
        sess.obs.pool_patches.set(entries.len() as i64);
        let p_init = synth_stats.concrete;
        let abstract_init = entries.len();

        let mut queue = InputQueue::new();
        for (i, input) in problem
            .failing_inputs
            .iter()
            .chain(problem.passing_inputs.iter())
            .enumerate()
        {
            let model = sess.input_model(input);
            queue.push(CandidateInput {
                model,
                score: 100 - i as i64, // provided tests first, in order
                flipped_index: 0,
            });
        }

        RepairDriver {
            problem,
            config,
            sess,
            entries,
            queue,
            seen_paths: SeenPrefixes::new(),
            seen_prefixes: SeenPrefixes::new(),
            history: Vec::new(),
            coverage_paths: Vec::new(),
            p_init,
            abstract_init,
            paths_explored: 0,
            paths_skipped: 0,
            iterations: 0,
            inputs_generated: 0,
            generated_runs: 0,
            generated_patch_hits: 0,
            generated_bug_hits: 0,
            queries_screened: 0,
            explore_nanos: 0,
            elapsed_nanos: t0.elapsed().as_nanos() as u64,
            stop: None,
            injected: Vec::new(),
        }
    }

    /// Injects a failing (or passing) input into the live run, between
    /// `step`s — the continuous-repair entry point: a fuzzing front end
    /// that keeps discovering inputs can stream them into an in-flight
    /// job and every subsequent step's patch-space reduction sees them.
    ///
    /// The input joins the queue in the injected priority band (below the
    /// provided seeds, above all generated candidates) with a score that
    /// decreases per injection, and is logged in the snapshot payload so
    /// a park/resume cycle preserves both the pending candidate and the
    /// next injection's score — the determinism contract holds across
    /// inject-then-snapshot-then-resume.
    ///
    /// # Errors
    ///
    /// Rejects injections after the run has stopped, inputs naming
    /// unknown variables, missing a declared input, or out of declared
    /// range — the same well-formedness provided tests are validated for.
    pub fn inject_input(&mut self, input: &crate::problem::TestInput) -> Result<(), String> {
        if let Some(reason) = self.stop {
            return Err(format!(
                "run already stopped ({}): injection would never be explored",
                reason.name()
            ));
        }
        let mut pairs: Vec<(String, i64)> = Vec::with_capacity(input.len());
        for decl in &self.problem.program.inputs {
            let Some(&value) = input.get(&decl.name) else {
                return Err(format!("injected input is missing \"{}\"", decl.name));
            };
            if value < decl.lo || value > decl.hi {
                return Err(format!(
                    "injected value {}={} is outside the declared range [{}, {}]",
                    decl.name, value, decl.lo, decl.hi
                ));
            }
            pairs.push((decl.name.clone(), value));
        }
        if input.len() > pairs.len() {
            let declared: std::collections::HashSet<&str> = self
                .problem
                .program
                .inputs
                .iter()
                .map(|d| d.name.as_str())
                .collect();
            let unknown = input
                .keys()
                .find(|k| !declared.contains(k.as_str()))
                .cloned()
                .unwrap_or_default();
            return Err(format!(
                "injected input names unknown variable \"{unknown}\""
            ));
        }
        pairs.sort();
        let score = (INJECTED_SCORE_BASE - self.injected.len() as i64).max(INJECTED_SCORE_FLOOR);
        let model = self.sess.input_model(input);
        self.queue.push(CandidateInput {
            model,
            score,
            flipped_index: 0,
        });
        self.injected.push(pairs);
        Ok(())
    }

    /// Number of inputs injected so far (including ones already explored).
    pub fn injected_inputs(&self) -> usize {
        self.injected.len()
    }

    /// Runs one iteration of the repair loop (Algorithm 1, lines 2–11):
    /// pick an input, pick a compatible patch, execute concolically,
    /// reduce the pool, expand the search frontier. Idempotent once done.
    pub fn step(&mut self) -> StepStatus {
        if let Some(reason) = self.stop {
            return StepStatus::Done(reason);
        }
        let _span = cpr_obs::span!(
            self.sess.obs.registry,
            "driver.step",
            "iteration {}",
            self.iterations
        );
        let step_timer = self.sess.obs.step_nanos.start();
        let t0 = Instant::now();
        let status = self.step_inner();
        let ns = t0.elapsed().as_nanos() as u64;
        self.explore_nanos += ns;
        self.elapsed_nanos += ns;
        self.sess.obs.step_nanos.stop(step_timer);
        status
    }

    fn step_inner(&mut self) -> StepStatus {
        if self.entries.is_empty() {
            return self.stop_with(StopReason::PoolEmpty);
        }
        if self.iterations >= self.config.max_iterations {
            return self.stop_with(StopReason::IterationBudget);
        }
        if let Some(ms) = self.config.max_millis {
            if self.explore_nanos >= ms.saturating_mul(1_000_000) {
                return self.stop_with(StopReason::TimeBudget);
            }
        }
        // PickNewInput: highest-priority candidate plus a patch that makes
        // its path feasible.
        let Some(candidate) = self.queue.pop() else {
            return self.stop_with(StopReason::InputsExhausted);
        };
        self.iterations += 1;
        let is_generated = candidate.score < INJECTED_SCORE_FLOOR;

        // Pick the best-ranked patch compatible with this candidate's
        // parameters; if the stored parameters died with refinement, fall
        // back to the current best patch's representative.
        let order = rank_order(&self.sess.pool, &self.entries);
        let Some((theta, params)) = select_patch(&self.entries, &order, &candidate) else {
            return self.stop_with(StopReason::PoolEmpty);
        };

        // ConcolicExec(t, ρ, L) — line 7.
        let input = self.sess.project_inputs(&candidate.model);
        let hole = HolePatch { theta, params };
        let exec = self.sess.exec.clone();
        let run = exec.execute(
            &mut self.sess.pool,
            &self.problem.program,
            &input,
            Some(&hole),
        );
        let obs = self.sess.obs.clone();
        if is_generated {
            self.inputs_generated += 1;
            obs.inputs_generated.inc();
            self.generated_runs += 1;
            if run.hit_patch {
                self.generated_patch_hits += 1;
            }
            if run.hit_bug {
                self.generated_bug_hits += 1;
            }
        }
        let full_path: Vec<TermId> = run.constraints();
        if self.seen_paths.insert(&full_path) {
            self.paths_explored += 1;
            obs.paths_explored.inc();
            if self.config.track_coverage {
                // Record the partition and its executed parameters; the
                // model counting itself runs in `finish` so coverage
                // tracking never serializes exploration.
                self.coverage_paths.push((full_path, hole.params.clone()));
            }
        }

        // Reduce — lines 8–10.
        if run.hit_patch {
            let _sp = cpr_obs::span!(obs.registry, "reduce.phase", "pool {}", self.entries.len());
            let timer = obs.reduce_nanos.start();
            let rstats = reduce(&mut self.sess, &mut self.entries, &run, &self.config);
            obs.reduce_nanos.stop(timer);
            obs.patches_refined.add(rstats.refined as u64);
            obs.patches_dropped.add(rstats.removed as u64);
            obs.evidence_feasible.add(rstats.feasible as u64);
            obs.queries_screened.add(rstats.screened);
            self.queries_screened += rstats.screened;
        }
        obs.pool_patches.set(self.entries.len() as i64);
        self.history.push(pool_volume(&self.entries));
        if self.entries.is_empty() {
            return self.stop_with(StopReason::PoolEmpty);
        }

        // Expansion: generational search with path reduction, fanned out
        // over the worker pool with incremental prefix solving (see
        // [`crate::expand`]). Candidates arrive in the serial flip order,
        // so the input queue evolves bit-identically at any thread count.
        let expansion = {
            let _sp = cpr_obs::span!(obs.registry, "expand.phase");
            let timer = obs.expand_nanos.start();
            let expansion = expand(
                &mut self.sess,
                &self.entries,
                &run,
                &mut self.seen_prefixes,
                &self.config,
            );
            obs.expand_nanos.stop(timer);
            expansion
        };
        obs.flips_expanded
            .add(expansion.stats.flips_expanded as u64);
        obs.expand_candidates.add(expansion.stats.candidates as u64);
        obs.model_reuse_hits.add(expansion.stats.model_reuse_hits);
        obs.paths_skipped.add(expansion.paths_skipped as u64);
        obs.queries_screened.add(expansion.stats.static_refutations);
        for candidate in expansion.candidates {
            self.queue.push(candidate);
        }
        self.paths_skipped += expansion.paths_skipped;
        self.queries_screened += expansion.stats.static_refutations;
        StepStatus::Running
    }

    fn stop_with(&mut self, reason: StopReason) -> StepStatus {
        self.stop = Some(reason);
        StepStatus::Done(reason)
    }

    /// Whether the loop has reached a stop condition.
    pub fn is_done(&self) -> bool {
        self.stop.is_some()
    }

    /// Why the loop stopped, once it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Abstract patches still in the pool.
    pub fn abstract_patches(&self) -> usize {
        self.entries.len()
    }

    /// Concrete patches still in the pool.
    pub fn concrete_patches(&self) -> u128 {
        pool_volume(&self.entries)
    }

    /// The problem being repaired.
    pub fn problem(&self) -> &RepairProblem {
        &self.problem
    }

    /// The active configuration.
    pub fn config(&self) -> &RepairConfig {
        &self.config
    }

    /// Coverage model counting, final ranking, developer-patch rank and
    /// patched-source rendering — everything that happens after the loop.
    /// Valid at any point (the algorithm is anytime): the report simply
    /// describes the pool as reduced so far.
    pub fn finish(mut self) -> RepairReport {
        let t0 = Instant::now();
        // Coverage accounting, off the critical exploration loop:
        // instantiate each recorded partition at its executed parameters
        // and count models. Substitution is hash-consing on the same term
        // structures the in-loop variant would have built, so the reported
        // share is unchanged.
        let input_space_volume: u128 = self.problem.program.inputs.iter().fold(1u128, |acc, d| {
            acc.saturating_mul((d.hi - d.lo + 1).max(1) as u128)
        });
        let mut covered_models: u128 = 0;
        for (path, params) in &self.coverage_paths {
            let mut map = std::collections::HashMap::new();
            for (v, val) in params.iter() {
                let c = self.sess.pool.int(val.as_int().unwrap_or(0));
                map.insert(v, c);
            }
            let instantiated: Vec<TermId> = path
                .iter()
                .map(|&c| self.sess.pool.substitute(c, &map))
                .collect();
            let bounds =
                self.sess
                    .solver
                    .count_models(&self.sess.pool, &instantiated, &self.sess.domains);
            covered_models = covered_models.saturating_add(bounds.estimate() as u128);
        }

        // Final report.
        let order = rank_order(&self.sess.pool, &self.entries);
        let ranked: Vec<RankedPatch> = order
            .iter()
            .map(|&i| {
                let e = &self.entries[i];
                RankedPatch {
                    id: e.patch.id,
                    display: e.patch.display(&self.sess.pool),
                    score: e.score.value(),
                    concrete: e.patch.concrete_count(),
                    deletion_evidence: e.score.deletion_evidence,
                }
            })
            .collect();
        let dev_rank = self.problem.developer_patch.clone().and_then(|src| {
            crate::repair::developer_rank(
                &mut self.sess,
                &self.problem,
                &self.entries,
                &order,
                &src,
            )
        });
        let top_patched_source = order.first().and_then(|&i| {
            let patch = &self.entries[i].patch;
            let binding = patch.representative()?;
            crate::apply_patch(
                &self.problem.program,
                &mut self.sess.pool,
                patch.theta,
                &binding,
            )
            .ok()
            .map(|p| cpr_lang::pretty(&p))
        });
        self.elapsed_nanos += t0.elapsed().as_nanos() as u64;
        RepairReport {
            subject: self.problem.name.clone(),
            p_init: self.p_init,
            p_final: pool_volume(&self.entries),
            abstract_init: self.abstract_init,
            abstract_final: self.entries.len(),
            paths_explored: self.paths_explored,
            paths_skipped: self.paths_skipped,
            iterations: self.iterations,
            inputs_generated: self.inputs_generated,
            patch_loc_hit_ratio: ratio(self.generated_patch_hits, self.generated_runs),
            bug_loc_hit_ratio: ratio(self.generated_bug_hits, self.generated_runs),
            ranked,
            dev_rank,
            history: self.history,
            top_patched_source,
            input_coverage: if self.config.track_coverage {
                Some((covered_models as f64 / input_space_volume.max(1) as f64).min(1.0))
            } else {
                None
            },
            wall_millis: self.elapsed_nanos / 1_000_000,
            solver_queries: self.sess.solver.stats().queries,
            queries_screened: self.queries_screened,
        }
    }

    // -----------------------------------------------------------------
    // Snapshot / resume.
    // -----------------------------------------------------------------

    /// Serializes the driver's complete loop state (see the module docs
    /// for the contract). Valid at any step boundary; byte-stable: the
    /// same state always encodes to the same bytes.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut p = ByteWriter::new();
        self.sess.pool.write_wire(&mut p);
        wire::write_solver_stats(&mut p, &self.sess.solver.stats());
        wire::write_unsat_prefix_store(&mut p, &self.sess.unsat_prefixes);

        p.usize(self.entries.len());
        for e in &self.entries {
            p.usize(e.patch.id);
            wire::write_term_id(&mut p, e.patch.theta);
            p.usize(e.patch.params.len());
            for &v in &e.patch.params {
                wire::write_var_id(&mut p, v);
            }
            wire::write_region(&mut p, &e.patch.constraint);
            p.u32(e.score.feasible);
            p.u32(e.score.bug_hits);
            p.u32(e.score.deletion_evidence);
        }

        // The queue in internal heap order: `CandidateInput`'s ordering
        // ignores the model, so only the exact internal layout reproduces
        // the pop order — and with it the models — of tied candidates.
        p.usize(self.queue.len());
        for c in self.queue.snapshot_order() {
            wire::write_model(&mut p, &c.model);
            p.i64(c.score);
            p.usize(c.flipped_index);
        }

        // Seen sets are pure membership — sorted for stable bytes.
        for set in [&self.seen_paths, &self.seen_prefixes] {
            let mut seqs: Vec<&[TermId]> = set.iter().collect();
            seqs.sort();
            p.usize(seqs.len());
            for s in seqs {
                p.usize(s.len());
                for &t in s {
                    wire::write_term_id(&mut p, t);
                }
            }
        }

        p.usize(self.history.len());
        for &h in &self.history {
            write_u128(&mut p, h);
        }

        p.usize(self.coverage_paths.len());
        for (path, params) in &self.coverage_paths {
            p.usize(path.len());
            for &t in path {
                wire::write_term_id(&mut p, t);
            }
            wire::write_model(&mut p, params);
        }

        write_u128(&mut p, self.p_init);
        p.usize(self.abstract_init);
        p.usize(self.paths_explored);
        p.usize(self.paths_skipped);
        p.usize(self.iterations);
        p.usize(self.inputs_generated);
        p.usize(self.generated_runs);
        p.usize(self.generated_patch_hits);
        p.usize(self.generated_bug_hits);
        p.u64(self.queries_screened);
        p.u64(self.explore_nanos);
        p.u64(self.elapsed_nanos);
        p.u8(match self.stop {
            None => 0,
            Some(StopReason::PoolEmpty) => 1,
            Some(StopReason::IterationBudget) => 2,
            Some(StopReason::TimeBudget) => 3,
            Some(StopReason::InputsExhausted) => 4,
        });

        // Injected-inputs log (format v4): arrival order, pairs pre-sorted
        // at injection time, so the bytes are stable.
        p.usize(self.injected.len());
        for pairs in &self.injected {
            p.usize(pairs.len());
            for (name, value) in pairs {
                p.str(name);
                p.i64(*value);
            }
        }

        let payload = p.into_bytes();
        let mut out = ByteWriter::new();
        out.raw(SNAPSHOT_MAGIC);
        out.u32(SNAPSHOT_VERSION);
        out.u64(subject_digest(&self.problem));
        out.u64(payload.len() as u64);
        let checksum = wire::fnv1a(&payload);
        out.raw(&payload);
        out.u64(checksum);
        out.into_bytes()
    }

    /// Restores a driver from snapshot bytes taken for the same
    /// `problem`/`config` pair. The resumed driver continues the run
    /// bit-identically: every subsequent `step` and the final `finish`
    /// produce exactly what the original driver would have produced.
    pub fn resume(
        problem: RepairProblem,
        config: RepairConfig,
        bytes: &[u8],
    ) -> Result<RepairDriver, SnapshotError> {
        let trunc = |_: WireError| SnapshotError::Truncated;
        let (version, mut r) = check_snapshot_header(&problem, bytes)?;
        let plen = r.u64("payload length").map_err(trunc)? as usize;
        if r.remaining() < plen + 8 {
            return Err(SnapshotError::Truncated);
        }
        let payload = r.raw(plen, "payload").map_err(trunc)?;
        let checksum = r.u64("checksum").map_err(trunc)?;
        if wire::fnv1a(payload) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut p = ByteReader::new(payload);
        let pool = TermPool::read_wire(&mut p)?;
        let terms = pool.len();
        let vars = pool.var_count();
        let stats = wire::read_solver_stats(&mut p)?;
        let unsat_prefixes = wire::read_unsat_prefix_store(&mut p, terms)?;

        // Sequence counts feeding `Vec::with_capacity` are read through
        // `seq_len` with each element's minimum encoded size, so a corrupt
        // count fails as a typed error before it can demand an allocation
        // larger than the payload itself.
        let nentries = p.seq_len("pool entries", 48)?;
        let mut entries = Vec::with_capacity(nentries);
        for _ in 0..nentries {
            let id = p.len("patch id")?;
            let theta = wire::read_term_id(&mut p, terms, "patch theta")?;
            let nparams = p.seq_len("patch params", 4)?;
            let mut params: Vec<VarId> = Vec::with_capacity(nparams);
            for _ in 0..nparams {
                params.push(wire::read_var_id(&mut p, vars, "patch parameter")?);
            }
            let constraint: Region = wire::read_region(&mut p, vars)?;
            let score = RankScore {
                feasible: p.u32("score feasible")?,
                bug_hits: p.u32("score bug hits")?,
                deletion_evidence: p.u32("score deletion evidence")?,
            };
            entries.push(PoolEntry {
                patch: AbstractPatch {
                    id,
                    theta,
                    params,
                    constraint,
                },
                score,
            });
        }

        let ncands = p.seq_len("queue candidates", 24)?;
        let mut candidates = Vec::with_capacity(ncands);
        for _ in 0..ncands {
            let model = wire::read_model(&mut p, vars)?;
            let score = p.i64("candidate score")?;
            let flipped_index = p.len("candidate flip index")?;
            candidates.push(CandidateInput {
                model,
                score,
                flipped_index,
            });
        }
        let queue = InputQueue::from_snapshot(candidates);

        let read_prefix_set = |p: &mut ByteReader<'_>| -> Result<SeenPrefixes, SnapshotError> {
            let n = p.seq_len("prefix set", 8)?;
            let mut set = SeenPrefixes::new();
            for _ in 0..n {
                let len = p.seq_len("prefix length", 4)?;
                let mut seq = Vec::with_capacity(len);
                for _ in 0..len {
                    seq.push(wire::read_term_id(p, terms, "prefix constraint")?);
                }
                set.insert(&seq);
            }
            Ok(set)
        };
        let seen_paths = read_prefix_set(&mut p)?;
        let seen_prefixes = read_prefix_set(&mut p)?;

        let nhist = p.seq_len("history", 16)?;
        let mut history = Vec::with_capacity(nhist);
        for _ in 0..nhist {
            history.push(read_u128(&mut p)?);
        }

        let ncov = p.seq_len("coverage paths", 16)?;
        let mut coverage_paths = Vec::with_capacity(ncov);
        for _ in 0..ncov {
            let len = p.seq_len("coverage path length", 4)?;
            let mut path = Vec::with_capacity(len);
            for _ in 0..len {
                path.push(wire::read_term_id(&mut p, terms, "coverage constraint")?);
            }
            let params = wire::read_model(&mut p, vars)?;
            coverage_paths.push((path, params));
        }

        let p_init = read_u128(&mut p)?;
        let abstract_init = p.len("abstract init")?;
        let paths_explored = p.len("paths explored")?;
        let paths_skipped = p.len("paths skipped")?;
        let iterations = p.len("iterations")?;
        let inputs_generated = p.len("inputs generated")?;
        let generated_runs = p.len("generated runs")?;
        let generated_patch_hits = p.len("generated patch hits")?;
        let generated_bug_hits = p.len("generated bug hits")?;
        let queries_screened = p.u64("queries screened")?;
        let explore_nanos = p.u64("explore nanos")?;
        let elapsed_nanos = p.u64("elapsed nanos")?;
        let stop = match p.u8("stop reason")? {
            0 => None,
            1 => Some(StopReason::PoolEmpty),
            2 => Some(StopReason::IterationBudget),
            3 => Some(StopReason::TimeBudget),
            4 => Some(StopReason::InputsExhausted),
            tag => {
                return Err(SnapshotError::Corrupt(WireError::BadTag {
                    what: "stop reason",
                    tag,
                }))
            }
        };

        // Injected-inputs log: absent before v4 — a v3 snapshot predates
        // injection, so it loads with an empty log (forward compat).
        let mut injected = Vec::new();
        if version >= 4 {
            let ninj = p.seq_len("injected inputs", 8)?;
            injected.reserve(ninj);
            for _ in 0..ninj {
                let npairs = p.seq_len("injected input pairs", 16)?;
                let mut pairs = Vec::with_capacity(npairs);
                for _ in 0..npairs {
                    let name = p.str("injected input name")?;
                    let value = p.i64("injected input value")?;
                    pairs.push((name, value));
                }
                injected.push(pairs);
            }
        }

        // Rebuild the session from problem + config, then verify the
        // restored pool extends the session's base pool: if the config
        // disagrees with the one the snapshot was taken under (different
        // parameter count, say), the base vars/terms would differ and the
        // restored ids would silently mean different terms.
        let mut sess = Session::new(&problem, &config);
        if !pool.is_extension_of(&sess.pool) {
            return Err(SnapshotError::PoolMismatch);
        }
        sess.pool = pool;
        sess.solver.restore_stats(stats);
        sess.unsat_prefixes = unsat_prefixes;

        Ok(RepairDriver {
            problem,
            config,
            sess,
            entries,
            queue,
            seen_paths,
            seen_prefixes,
            history,
            coverage_paths,
            p_init,
            abstract_init,
            paths_explored,
            paths_skipped,
            iterations,
            inputs_generated,
            generated_runs,
            generated_patch_hits,
            generated_bug_hits,
            queries_screened,
            explore_nanos,
            elapsed_nanos,
            stop,
            injected,
        })
    }
}

/// Validates a snapshot's header (magic, format version, subject digest)
/// against `problem` without decoding the payload. Cheap — a submit-time
/// guard for services adopting a stored snapshot, so a wrong-subject or
/// wrong-version file is rejected up front instead of failing the job
/// later. Returns the format version (any in
/// [`MIN_SNAPSHOT_VERSION`]`..=`[`SNAPSHOT_VERSION`] is accepted) and a
/// reader positioned at the payload length for [`RepairDriver::resume`]
/// to continue from.
pub fn check_snapshot_header<'a>(
    problem: &RepairProblem,
    bytes: &'a [u8],
) -> Result<(u32, ByteReader<'a>), SnapshotError> {
    let trunc = |_: WireError| SnapshotError::Truncated;
    let mut r = ByteReader::new(bytes);
    let magic = r.raw(4, "magic").map_err(trunc)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32("version").map_err(trunc)?;
    if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let digest = r.u64("subject digest").map_err(trunc)?;
    if digest != subject_digest(problem) {
        return Err(SnapshotError::SubjectMismatch);
    }
    Ok((version, r))
}

/// Digest identifying the subject a snapshot belongs to: name, program
/// source, and the provided tests. Config is deliberately *not* digested —
/// the pool-prefix check in `resume` catches config drift that matters,
/// while irrelevant knobs (thread count, say) stay freely changeable.
pub fn subject_digest(problem: &RepairProblem) -> u64 {
    let mut w = ByteWriter::new();
    w.str(&problem.name);
    w.str(&cpr_lang::pretty(&problem.program));
    for set in [&problem.failing_inputs, &problem.passing_inputs] {
        w.usize(set.len());
        for input in set {
            let mut pairs: Vec<(&String, i64)> = input.iter().map(|(k, &v)| (k, v)).collect();
            pairs.sort();
            w.usize(pairs.len());
            for (k, v) in pairs {
                w.str(k);
                w.i64(v);
            }
        }
    }
    wire::fnv1a(w.bytes())
}

fn write_u128(w: &mut ByteWriter, v: u128) {
    w.u64((v >> 64) as u64);
    w.u64(v as u64);
}

fn read_u128(r: &mut ByteReader<'_>) -> Result<u128, WireError> {
    let hi = r.u64("u128 high")?;
    let lo = r.u64("u128 low")?;
    Ok((u128::from(hi) << 64) | u128::from(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::test_input;
    use cpr_lang::{check, parse};
    use cpr_synth::{ComponentSet, SynthConfig};

    const DIV_SRC: &str = "program cve_2016_3623 {
        input x in [-10, 10];
        input y in [-10, 10];
        if (__patch_cond__(x, y)) { return 1; }
        bug div_by_zero requires (x * y != 0);
        return 100 / (x * y);
      }";

    fn problem() -> RepairProblem {
        let program = parse(DIV_SRC).unwrap();
        check(&program).unwrap();
        RepairProblem::new(
            "Libtiff/CVE-2016-3623",
            program,
            ComponentSet::new()
                .with_all_comparisons()
                .with_logic()
                .with_variables(["x", "y"])
                .with_constants(&[0]),
            SynthConfig::default(),
            vec![test_input(&[("x", 7), ("y", 0)])],
        )
        .with_developer_patch("x == 0 || y == 0")
    }

    fn config() -> RepairConfig {
        RepairConfig {
            max_iterations: 6,
            ..RepairConfig::quick()
        }
    }

    #[test]
    fn driver_loop_matches_repair() {
        let mut d = RepairDriver::new(problem(), config());
        while d.step() == StepStatus::Running {}
        let by_driver = d.finish();
        let direct = crate::repair(&problem(), &config());
        assert_eq!(by_driver.p_init, direct.p_init);
        assert_eq!(by_driver.p_final, direct.p_final);
        assert_eq!(by_driver.iterations, direct.iterations);
        assert_eq!(by_driver.history, direct.history);
        assert_eq!(by_driver.solver_queries, direct.solver_queries);
    }

    #[test]
    fn step_is_idempotent_after_done() {
        let mut d = RepairDriver::new(problem(), config());
        while d.step() == StepStatus::Running {}
        let reason = d.stop_reason().unwrap();
        assert_eq!(d.step(), StepStatus::Done(reason));
        assert_eq!(d.step(), StepStatus::Done(reason));
        assert!(d.is_done());
    }

    #[test]
    fn snapshot_roundtrips_mid_run() {
        let mut d = RepairDriver::new(problem(), config());
        d.step();
        d.step();
        let snap = d.snapshot();
        let r = RepairDriver::resume(problem(), config(), &snap).unwrap();
        // Same state, same bytes.
        assert_eq!(r.iterations(), d.iterations());
        assert_eq!(r.snapshot(), snap);
        // Both continue to the same report.
        let mut r = r;
        while d.step() == StepStatus::Running {}
        while r.step() == StepStatus::Running {}
        let a = d.finish();
        let b = r.finish();
        assert_eq!(a.p_final, b.p_final);
        assert_eq!(a.history, b.history);
        assert_eq!(a.solver_queries, b.solver_queries);
        assert_eq!(
            a.ranked.iter().map(|p| &p.display).collect::<Vec<_>>(),
            b.ranked.iter().map(|p| &p.display).collect::<Vec<_>>()
        );
    }

    #[test]
    fn resume_rejects_bad_magic() {
        let mut d = RepairDriver::new(problem(), config());
        d.step();
        let mut snap = d.snapshot();
        snap[0] = b'X';
        assert!(matches!(
            RepairDriver::resume(problem(), config(), &snap),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn resume_rejects_unsupported_version() {
        let d = RepairDriver::new(problem(), config());
        let mut snap = d.snapshot();
        snap[4] = 0xFF; // version is the u32 after the 4 magic bytes
        assert!(matches!(
            RepairDriver::resume(problem(), config(), &snap),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn resume_rejects_wrong_subject() {
        let d = RepairDriver::new(problem(), config());
        let snap = d.snapshot();
        let mut other = problem();
        other.name = "Other/Subject".into();
        assert!(matches!(
            RepairDriver::resume(other, config(), &snap),
            Err(SnapshotError::SubjectMismatch)
        ));
    }

    #[test]
    fn header_check_validates_without_decoding_payload() {
        let mut d = RepairDriver::new(problem(), config());
        d.step();
        let snap = d.snapshot();
        assert!(check_snapshot_header(&problem(), &snap).is_ok());
        let mut other = problem();
        other.name = "Other/Subject".into();
        assert!(matches!(
            check_snapshot_header(&other, &snap),
            Err(SnapshotError::SubjectMismatch)
        ));
        assert!(matches!(
            check_snapshot_header(&problem(), b"CPR"),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn resume_rejects_huge_counts_in_a_checksum_valid_payload() {
        // FNV-1a is a checksum, not a MAC: anyone who can write the file
        // can make a corrupt payload checksum-valid. A snapshot declaring
        // an absurd collection count must fail as a typed error before the
        // decoder allocates for the declared count.
        let mut p = ByteWriter::new();
        p.u64(0); // term pool: no variables
        p.u64(0); // term pool: no terms
        for _ in 0..17 {
            p.u64(0); // solver stats
        }
        p.u64(0); // unsat store capacity
        p.u64(u64::MAX / 2); // unsat store entries: absurd
        let payload = p.into_bytes();
        let mut w = ByteWriter::new();
        w.raw(SNAPSHOT_MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.u64(subject_digest(&problem()));
        w.u64(payload.len() as u64);
        let checksum = wire::fnv1a(&payload);
        w.raw(&payload);
        w.u64(checksum);
        assert!(matches!(
            RepairDriver::resume(problem(), config(), &w.into_bytes()),
            Err(SnapshotError::Corrupt(WireError::BadLength { .. }))
        ));
    }

    #[test]
    fn resume_rejects_truncation_at_every_prefix_length() {
        let mut d = RepairDriver::new(problem(), config());
        d.step();
        let snap = d.snapshot();
        // Chopping the snapshot anywhere must yield a typed error, never a
        // panic. Check a spread of prefix lengths including the header.
        for cut in [0, 1, 3, 4, 7, 8, 15, 16, 23, snap.len() / 2, snap.len() - 1] {
            let err = RepairDriver::resume(problem(), config(), &snap[..cut])
                .expect_err("truncated snapshot must not load");
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn resume_rejects_corrupted_payload() {
        let mut d = RepairDriver::new(problem(), config());
        d.step();
        let mut snap = d.snapshot();
        // Flip one payload byte: the checksum catches it.
        let mid = 24 + (snap.len() - 32) / 2;
        snap[mid] ^= 0xA5;
        assert!(matches!(
            RepairDriver::resume(problem(), config(), &snap),
            Err(SnapshotError::ChecksumMismatch)
        ));
    }

    #[test]
    fn resume_rejects_mismatched_config_pool() {
        let d = RepairDriver::new(problem(), config());
        let snap = d.snapshot();
        // A config with a different parameter count builds a different base
        // session; restored ids would silently shift meaning.
        let mut other = problem();
        other.synth.max_params = 7;
        assert!(matches!(
            RepairDriver::resume(other, config(), &snap),
            Err(SnapshotError::PoolMismatch)
        ));
    }

    #[test]
    fn inject_validates_inputs_and_rejects_finished_runs() {
        let mut d = RepairDriver::new(problem(), config());
        let err = d
            .inject_input(&test_input(&[("x", 3)]))
            .expect_err("missing y");
        assert!(err.contains("missing \"y\""), "{err}");
        let err = d
            .inject_input(&test_input(&[("x", 3), ("y", 99)]))
            .expect_err("y out of range");
        assert!(err.contains("outside the declared range"), "{err}");
        let err = d
            .inject_input(&test_input(&[("x", 3), ("y", 2), ("z", 1)]))
            .expect_err("z undeclared");
        assert!(err.contains("unknown variable \"z\""), "{err}");
        assert_eq!(d.injected_inputs(), 0);
        while d.step() == StepStatus::Running {}
        let err = d
            .inject_input(&test_input(&[("x", 0), ("y", 3)]))
            .expect_err("run is done");
        assert!(err.contains("already stopped"), "{err}");
    }

    #[test]
    fn injected_inputs_outrank_generated_candidates_but_not_provided_seeds() {
        let mut d = RepairDriver::new(problem(), config());
        for i in 0..3 {
            d.inject_input(&test_input(&[("x", i), ("y", 3)])).unwrap();
        }
        let scores: Vec<i64> = d.queue.snapshot_order().map(|c| c.score).collect();
        // The provided seed keeps its 100-band score; injections fill the
        // 50..=80 band below it, decreasing so earlier injections explore
        // first; nothing enters the generated band (< 50).
        assert!(scores.contains(&100));
        assert!(scores.contains(&80) && scores.contains(&79) && scores.contains(&78));
        assert!(scores.iter().all(|&s| s >= INJECTED_SCORE_FLOOR));
    }

    #[test]
    fn injection_enters_the_snapshot_and_roundtrips() {
        let mut d = RepairDriver::new(problem(), config());
        d.step();
        d.inject_input(&test_input(&[("x", 0), ("y", 3)])).unwrap();
        d.inject_input(&test_input(&[("x", 2), ("y", 0)])).unwrap();
        let snap = d.snapshot();
        let mut r = RepairDriver::resume(problem(), config(), &snap).unwrap();
        // Same state — including the injection log — and same bytes.
        assert_eq!(r.injected_inputs(), 2);
        assert_eq!(r.snapshot(), snap);
        // Both continue to the same report.
        while d.step() == StepStatus::Running {}
        while r.step() == StepStatus::Running {}
        let a = d.finish();
        let b = r.finish();
        assert_eq!(a.p_final, b.p_final);
        assert_eq!(a.history, b.history);
        assert_eq!(a.solver_queries, b.solver_queries);
        assert_eq!(
            a.ranked.iter().map(|p| &p.display).collect::<Vec<_>>(),
            b.ranked.iter().map(|p| &p.display).collect::<Vec<_>>()
        );
    }

    /// Rebuilds a current-version snapshot with no injections as the
    /// version-3 wire image: the injection log (a trailing empty count)
    /// did not exist, so stripping it and re-stamping version + length +
    /// checksum reproduces the old format byte-for-byte.
    fn downgrade_to_v3(snap: &[u8]) -> Vec<u8> {
        let plen = u64::from_le_bytes(snap[16..24].try_into().unwrap()) as usize;
        let payload = &snap[24..24 + plen];
        assert_eq!(
            &payload[plen - 8..],
            &0u64.to_le_bytes(),
            "fixture requires an empty injection log"
        );
        let stripped = &payload[..plen - 8];
        let mut w = ByteWriter::new();
        w.raw(SNAPSHOT_MAGIC);
        w.u32(3);
        w.raw(&snap[8..16]); // subject digest, verbatim
        w.u64(stripped.len() as u64);
        let checksum = wire::fnv1a(stripped);
        w.raw(stripped);
        w.u64(checksum);
        w.into_bytes()
    }

    #[test]
    fn resume_accepts_a_version_3_snapshot_with_an_empty_injection_log() {
        let mut d = RepairDriver::new(problem(), config());
        d.step();
        d.step();
        let v3 = downgrade_to_v3(&d.snapshot());
        assert_eq!(u32::from_le_bytes(v3[4..8].try_into().unwrap()), 3);
        assert!(check_snapshot_header(&problem(), &v3).is_ok());
        let mut r = RepairDriver::resume(problem(), config(), &v3).unwrap();
        assert_eq!(r.injected_inputs(), 0);
        // Re-snapshotting writes the current version, not the old one.
        assert_eq!(r.snapshot(), d.snapshot());
        while d.step() == StepStatus::Running {}
        while r.step() == StepStatus::Running {}
        let a = d.finish();
        let b = r.finish();
        assert_eq!(a.p_final, b.p_final);
        assert_eq!(a.history, b.history);
        assert_eq!(a.solver_queries, b.solver_queries);
    }

    #[test]
    fn resume_rejects_a_truncated_version_3_snapshot() {
        let mut d = RepairDriver::new(problem(), config());
        d.step();
        let v3 = downgrade_to_v3(&d.snapshot());
        // Chop inside the payload: the checksum no longer matches (or the
        // byte reader runs dry) — either way a typed error, never a panic.
        let err = RepairDriver::resume(problem(), config(), &v3[..v3.len() - 9])
            .expect_err("truncated v3 snapshot must not load");
        assert!(matches!(
            err,
            SnapshotError::Truncated | SnapshotError::ChecksumMismatch
        ));
    }

    #[test]
    fn snapshot_error_display_is_informative() {
        let errors: Vec<SnapshotError> = vec![
            SnapshotError::BadMagic,
            SnapshotError::UnsupportedVersion(9),
            SnapshotError::SubjectMismatch,
            SnapshotError::Truncated,
            SnapshotError::ChecksumMismatch,
            SnapshotError::PoolMismatch,
            SnapshotError::Corrupt(WireError::BadUtf8),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
