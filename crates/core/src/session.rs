//! Shared per-repair session state: the term pool, solver, executor and the
//! variable domains derived from the subject's input declarations.

use cpr_concolic::ConcolicExecutor;
use cpr_smt::{Domains, Model, SatResult, Solver, Sort, TermId, TermPool, UnsatPrefixStore, VarId};
use cpr_synth::param_vars;

use crate::problem::{RepairConfig, RepairProblem, TestInput};

/// All mutable state shared by the phases of one repair run.
#[derive(Debug)]
pub struct Session {
    /// The hash-consing pool every term of the run lives in.
    pub pool: TermPool,
    /// The branch-and-prune solver.
    pub solver: Solver,
    /// The concolic executor.
    pub exec: ConcolicExecutor,
    /// Initial domains: program inputs bounded by their declared ranges,
    /// template parameters bounded by the synthesis parameter range.
    pub domains: Domains,
    /// The program input variables, in declaration order.
    pub input_vars: Vec<VarId>,
    /// UNSAT path prefixes learned during expansion (incremental prefix
    /// solving): a query subsumed by a stored prefix is UNSAT without a
    /// search. Frozen during each parallel expansion batch and grown only
    /// at the batch's deterministic merge point.
    pub unsat_prefixes: UnsatPrefixStore,
}

impl Session {
    /// Sets up a session for the given problem: interns input and parameter
    /// variables and configures domains, solver and executor budgets.
    pub fn new(problem: &RepairProblem, config: &RepairConfig) -> Session {
        let mut pool = TermPool::new();
        let mut domains = Domains::new();
        let mut input_vars = Vec::with_capacity(problem.program.inputs.len());
        for decl in &problem.program.inputs {
            let v = pool.var(&decl.name, Sort::Int);
            domains.bound(v, decl.lo, decl.hi);
            input_vars.push(v);
        }
        let (plo, phi) = problem.synth.param_range;
        for p in param_vars(&mut pool, problem.synth.max_params.max(2)) {
            domains.bound(p, plo, phi);
        }
        Session {
            pool,
            solver: Solver::new(config.solver.clone()),
            exec: ConcolicExecutor::with_budgets(config.exec_max_steps, config.exec_max_path),
            domains,
            input_vars,
            unsat_prefixes: UnsatPrefixStore::new(config.unsat_prefix_capacity),
        }
    }

    /// Checks satisfiability of a conjunction under the session domains.
    pub fn check(&mut self, constraints: &[TermId]) -> SatResult {
        self.solver.check(&self.pool, constraints, &self.domains)
    }

    /// [`Session::check`] with incremental prefix solving: consults the
    /// session's UNSAT-prefix store before searching. The caller is
    /// responsible for learning new UNSAT queries back into
    /// [`Session::unsat_prefixes`] at a deterministic point.
    pub fn check_prefixed(&mut self, constraints: &[TermId]) -> SatResult {
        self.solver
            .check_prefixed(&self.pool, constraints, &self.domains, &self.unsat_prefixes)
    }

    /// Converts a named test input into a model over the input variables.
    pub fn input_model(&mut self, input: &TestInput) -> Model {
        let mut m = Model::new();
        for (name, &v) in input {
            let var = self.pool.var(name, Sort::Int);
            m.set(var, v);
        }
        m
    }

    /// Restricts a solver model to the program input variables (dropping
    /// parameter and hole-output assignments).
    pub fn project_inputs(&self, model: &Model) -> Model {
        model.restrict_to(&self.input_vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{test_input, RepairProblem};
    use cpr_lang::parse;
    use cpr_synth::{ComponentSet, SynthConfig};

    fn demo_problem() -> RepairProblem {
        let program =
            parse("program p { input x in [-7, 7]; input y in [0, 3]; return x + y; }").unwrap();
        RepairProblem::new(
            "demo",
            program,
            ComponentSet::new().with_variables(["x", "y"]),
            SynthConfig::default(),
            vec![test_input(&[("x", 1), ("y", 2)])],
        )
    }

    #[test]
    fn session_bounds_inputs_and_params() {
        let problem = demo_problem();
        let mut sess = Session::new(&problem, &RepairConfig::quick());
        let x = sess.pool.find_var("x").unwrap();
        let a = sess.pool.find_var("a").unwrap();
        assert_eq!(sess.domains.get(x).unwrap().lo(), -7);
        assert_eq!(sess.domains.get(a).unwrap().lo(), -10);
        assert_eq!(sess.input_vars.len(), 2);

        // The domain is enforced in queries: x > 7 is unsatisfiable.
        let xv = sess.pool.var_term(x);
        let c7 = sess.pool.int(7);
        let q = sess.pool.gt(xv, c7);
        assert!(sess.check(&[q]).is_unsat());
    }

    #[test]
    fn input_model_roundtrip_and_projection() {
        let problem = demo_problem();
        let mut sess = Session::new(&problem, &RepairConfig::quick());
        let mut m = sess.input_model(&test_input(&[("x", 3), ("y", 1)]));
        let x = sess.pool.find_var("x").unwrap();
        assert_eq!(m.int(x), Some(3));
        // Add a parameter assignment and project it away.
        let a = sess.pool.find_var("a").unwrap();
        m.set(a, 9i64);
        let projected = sess.project_inputs(&m);
        assert_eq!(projected.len(), 2);
        assert_eq!(projected.int(a), None);
    }
}
