//! Lowering of pure subject-language expressions into SMT terms.
//!
//! Benchmark subjects describe developer patches and baseline (buggy)
//! expressions as source strings; this module turns the parsed [`Expr`]
//! into a pool term over variables named after the program variables, which
//! is exactly the form the synthesizer and concolic engine use for `θ_ρ`.

use cpr_lang::{BinOp, Builtin, Expr, UnOp};
use cpr_smt::{CmpOp, Sort, TermId, TermPool};

/// Error for expressions that cannot be lowered (holes, array accesses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot lower expression: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Lowers a pure expression into a term. Variables are interned as integer
/// pool variables by name; boolean operators map onto the term algebra;
/// builtins become `ite` trees.
///
/// # Errors
///
/// Returns [`LowerError`] if the expression contains a patch hole or an
/// array access (neither has a pure first-order meaning).
pub fn lower_expr(pool: &mut TermPool, e: &Expr) -> Result<TermId, LowerError> {
    match e {
        Expr::Int(v, _) => Ok(pool.int(*v)),
        Expr::Bool(b, _) => Ok(pool.bool(*b)),
        Expr::Var(name, _) => Ok(pool.named_var(name, Sort::Int)),
        Expr::Index(..) => Err(LowerError("array access".into())),
        Expr::UserCall(..) => Err(LowerError("user function call".into())),
        Expr::Hole(..) => Err(LowerError("patch hole".into())),
        Expr::Unary(UnOp::Neg, inner, _) => {
            let t = lower_expr(pool, inner)?;
            Ok(pool.neg(t))
        }
        Expr::Unary(UnOp::Not, inner, _) => {
            let t = lower_expr(pool, inner)?;
            Ok(pool.not(t))
        }
        Expr::Binary(op, a, b, _) => {
            let x = lower_expr(pool, a)?;
            let y = lower_expr(pool, b)?;
            Ok(match op {
                BinOp::Add => pool.add(x, y),
                BinOp::Sub => pool.sub(x, y),
                BinOp::Mul => pool.mul(x, y),
                BinOp::Div => pool.div(x, y),
                BinOp::Rem => pool.rem(x, y),
                BinOp::Eq => pool.cmp(CmpOp::Eq, x, y),
                BinOp::Ne => pool.cmp(CmpOp::Ne, x, y),
                BinOp::Lt => pool.cmp(CmpOp::Lt, x, y),
                BinOp::Le => pool.cmp(CmpOp::Le, x, y),
                BinOp::Gt => pool.cmp(CmpOp::Gt, x, y),
                BinOp::Ge => pool.cmp(CmpOp::Ge, x, y),
                BinOp::And => pool.and(x, y),
                BinOp::Or => pool.or(x, y),
            })
        }
        Expr::Call(builtin, args, _) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(lower_expr(pool, a)?);
            }
            Ok(match builtin {
                Builtin::Min => {
                    let c = pool.le(vals[0], vals[1]);
                    pool.ite(c, vals[0], vals[1])
                }
                Builtin::Max => {
                    let c = pool.ge(vals[0], vals[1]);
                    pool.ite(c, vals[0], vals[1])
                }
                Builtin::Abs => {
                    let zero = pool.int(0);
                    let c = pool.ge(vals[0], zero);
                    let n = pool.neg(vals[0]);
                    pool.ite(c, vals[0], n)
                }
                Builtin::Roundup => {
                    let one = pool.int(1);
                    let ab = pool.add(vals[0], vals[1]);
                    let ab1 = pool.sub(ab, one);
                    let q = pool.div(ab1, vals[1]);
                    pool.mul(q, vals[1])
                }
            })
        }
    }
}

/// Parses and lowers an expression source string in one step.
///
/// # Errors
///
/// Returns the parse error message or [`LowerError`] rendered as a string.
pub fn lower_expr_src(pool: &mut TermPool, src: &str) -> Result<TermId, String> {
    let e = cpr_lang::parse_expr(src).map_err(|e| e.to_string())?;
    lower_expr(pool, &e).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_smt::Model;

    #[test]
    fn lowers_boolean_expression() {
        let mut pool = TermPool::new();
        let t = lower_expr_src(&mut pool, "x == 0 || y == 0").unwrap();
        assert_eq!(pool.display(t), "(or (= x 0) (= y 0))");
    }

    #[test]
    fn lowers_arithmetic_and_builtins() {
        let mut pool = TermPool::new();
        let t = lower_expr_src(&mut pool, "max(x, 3) + min(y, 0) - abs(x)").unwrap();
        let mut m = Model::new();
        let x = pool.find_var("x").unwrap();
        let y = pool.find_var("y").unwrap();
        m.set(x, -5i64);
        m.set(y, 2i64);
        // max(-5,3)=3, min(2,0)=0, abs(-5)=5 → 3 + 0 - 5 = -2
        assert_eq!(m.eval_int(&pool, t), -2);
    }

    #[test]
    fn rejects_holes_and_arrays() {
        let mut pool = TermPool::new();
        assert!(lower_expr_src(&mut pool, "__patch_cond__(x)").is_err());
        assert!(lower_expr_src(&mut pool, "a[1] > 0").is_err());
    }

    #[test]
    fn roundup_matches_interpreter_for_positive_divisors() {
        let mut pool = TermPool::new();
        let t = lower_expr_src(&mut pool, "roundup(n, k)").unwrap();
        let n = pool.find_var("n").unwrap();
        let k = pool.find_var("k").unwrap();
        for nv in 0..20i64 {
            for kv in 1..6i64 {
                let mut m = Model::new();
                m.set(n, nv);
                m.set(k, kv);
                let expected = ((nv + kv - 1) / kv) * kv;
                assert_eq!(m.eval_int(&pool, t), expected, "n={nv} k={kv}");
            }
        }
    }
}
