//! Repair problem definition and configuration: the inputs of the paper's
//! Algorithm 1 (buggy program, fault locations, budget, specification,
//! language components, initial tests).

use std::collections::HashMap;

use cpr_lang::Program;
use cpr_smt::SolverConfig;
use cpr_synth::{ComponentSet, SynthConfig};

/// A concrete test input: values for the program's declared inputs by name.
pub type TestInput = HashMap<String, i64>;

/// Builds a [`TestInput`] from `(name, value)` pairs.
pub fn test_input(pairs: &[(&str, i64)]) -> TestInput {
    pairs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect()
}

/// A complete repair problem.
///
/// The fault location (patch hole) and bug location (specification `σ`) are
/// part of the [`Program`] itself via the `__patch_*__` hole and the
/// `bug … requires (…)` marker — mirroring the paper's setup where the fault
/// locations are provided to the tool.
#[derive(Debug, Clone)]
pub struct RepairProblem {
    /// Human-readable subject name (e.g. `Libtiff/CVE-2016-3623`).
    pub name: String,
    /// The buggy program with hole and bug markers.
    pub program: Program,
    /// Language components for the synthesizer.
    pub components: ComponentSet,
    /// Synthesizer configuration (hole kind, parameter range, caps).
    pub synth: SynthConfig,
    /// At least one failing (error-exposing) input.
    pub failing_inputs: Vec<TestInput>,
    /// Optional additional passing tests.
    pub passing_inputs: Vec<TestInput>,
    /// The developer (ground-truth) patch as an expression source string,
    /// used only for evaluation (rank / correctness columns).
    pub developer_patch: Option<String>,
    /// The original (buggy) expression at the hole, as source. `None` means
    /// the fix *inserts* a guard that did not exist (the original behaves as
    /// `false` for condition holes).
    pub baseline_expr: Option<String>,
}

impl RepairProblem {
    /// Creates a problem with the mandatory pieces; optional fields start
    /// empty.
    pub fn new(
        name: impl Into<String>,
        program: Program,
        components: ComponentSet,
        synth: SynthConfig,
        failing_inputs: Vec<TestInput>,
    ) -> Self {
        RepairProblem {
            name: name.into(),
            program,
            components,
            synth,
            failing_inputs,
            passing_inputs: Vec::new(),
            developer_patch: None,
            baseline_expr: None,
        }
    }

    /// Sets the developer patch used for rank evaluation.
    pub fn with_developer_patch(mut self, src: impl Into<String>) -> Self {
        self.developer_patch = Some(src.into());
        self
    }

    /// Sets the original buggy expression at the hole.
    pub fn with_baseline(mut self, src: impl Into<String>) -> Self {
        self.baseline_expr = Some(src.into());
        self
    }

    /// Adds passing tests.
    pub fn with_passing_inputs(mut self, inputs: Vec<TestInput>) -> Self {
        self.passing_inputs = inputs;
        self
    }

    /// Validates that the problem is well-formed for repair: the program
    /// has a patch hole whose kind matches the synthesizer configuration,
    /// some specification is present (a bug location or an assertion),
    /// at least one failing input is given, and every test input stays
    /// inside the declared ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let Some((kind, _)) = self.program.hole() else {
            return Err("program has no patch hole (__patch_cond__/__patch_expr__)".into());
        };
        if kind != self.synth.hole_kind {
            return Err(format!(
                "synthesizer configured for {:?} but the hole is {kind:?}",
                self.synth.hole_kind
            ));
        }
        let has_assert = program_has_assert(&self.program.body);
        if self.program.bug().is_none() && !has_assert {
            return Err(
                "program has neither a bug location nor an assertion: no specification to                  repair against"
                    .into(),
            );
        }
        if self.failing_inputs.is_empty() {
            return Err("at least one failing input is required".into());
        }
        let (lo, hi) = self.synth.param_range;
        if lo > hi {
            return Err(format!("empty parameter range [{lo}, {hi}]"));
        }
        for (idx, input) in self
            .failing_inputs
            .iter()
            .chain(self.passing_inputs.iter())
            .enumerate()
        {
            for (name, &v) in input {
                match self.program.input_range(name) {
                    None => {
                        return Err(format!("test {idx} sets unknown input `{name}`"));
                    }
                    Some((lo, hi)) if v < lo || v > hi => {
                        return Err(format!(
                            "test {idx}: {name}={v} outside declared range [{lo}, {hi}]"
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }
}

fn program_has_assert(stmts: &[cpr_lang::Stmt]) -> bool {
    use cpr_lang::Stmt;
    stmts.iter().any(|s| match s {
        Stmt::Assert { .. } => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => program_has_assert(then_body) || program_has_assert(else_body),
        Stmt::While { body, .. } => program_has_assert(body),
        _ => false,
    })
}

/// Budgets and tuning for a repair run. The paper's experiments use a
/// 1-hour wall-clock budget; this reproduction uses an iteration budget plus
/// an optional wall-clock cap so runs are deterministic.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Maximum number of repair-loop iterations (explored inputs).
    pub max_iterations: usize,
    /// Optional wall-clock budget in milliseconds.
    pub max_millis: Option<u64>,
    /// Solver configuration.
    pub solver: SolverConfig,
    /// Interpreter/executor statement budget per run.
    pub exec_max_steps: u64,
    /// Maximum recorded path length per run.
    pub exec_max_path: usize,
    /// Maximum recursion depth of `RefinePatch` (Algorithm 3).
    pub max_refine_depth: u32,
    /// Maximum solver calls per `RefinePatch` invocation.
    pub max_refine_calls: u32,
    /// Maximum prefix flips expanded per explored path.
    pub max_expansion: usize,
    /// Maximum patches tried when checking prefix feasibility
    /// (path-reduction check); prefixes failing for this many patches are
    /// counted as skipped.
    pub max_feasibility_probes: usize,
    /// Whether to run the functionality-deletion ranking check (§3.5.3).
    pub deletion_check: bool,
    /// Refine the deletion check with model counting (§3.5.3: "find the
    /// proportion of inputs in a path affected by a patch insertion"):
    /// instead of penalizing only patches that are *constant* on a
    /// partition, penalize patches that redirect at least
    /// [`RepairConfig::deletion_ratio`] of the partition's inputs.
    pub model_counting: bool,
    /// Redirection proportion above which a patch counts as functionality
    /// deleting (only with `model_counting`).
    pub deletion_ratio: f64,
    /// Whether to prune path prefixes no patch can exercise (§3.4, "path
    /// reduction"). Disabling this is an ablation: exploration then wastes
    /// executions on partitions outside every patch.
    pub path_reduction: bool,
    /// Track the explored share of the input space by model counting each
    /// new partition (reported as `RepairReport::input_coverage`). Off by
    /// default: it costs one counting query per explored path.
    pub track_coverage: bool,
    /// Fixpoint rounds when validating candidates in Phase 1.
    pub max_validation_rounds: usize,
    /// Worker threads for the parallel phases of the repair loop: the
    /// patch-space reduction walk (Algorithm 2) and the expansion phase
    /// (generational search + path-reduction feasibility probes). Defaults
    /// to the machine's available parallelism. Any value produces
    /// bit-identical results — only wall-clock changes.
    pub threads: usize,
    /// Capacity of the UNSAT-prefix store used for incremental prefix
    /// solving during expansion: once a path prefix is proven UNSAT, every
    /// extension of it is refuted by a subset check instead of a solver
    /// search. `0` disables the store.
    pub unsat_prefix_capacity: usize,
    /// Which abstract domain the `cpr-analysis` static screening layer
    /// runs in front of the solver: refute reduce/expand queries by
    /// root-level contraction (intervals, or the relational zone domain),
    /// and reject concrete candidates alpha-equivalent to the buggy
    /// expression before validation spends refinement queries on them.
    /// Every screened refutation is replayed through an independent
    /// certificate checker before it is trusted, so screening is an
    /// under-approximation of solver refutation and the final
    /// [`crate::RepairReport`] is bit-identical across all three domains
    /// (modulo query counts); narrowing the domain is only useful to
    /// measure its effect.
    pub screen_domain: cpr_analysis::ScreenDomain,
    /// Record metrics and spans on the process-wide [`cpr_obs::global`]
    /// registry. Instrumentation is write-only — nothing recorded ever
    /// feeds back into repair decisions — so the final
    /// [`crate::RepairReport`] is bit-identical with it on or off
    /// (proved in `tests/determinism.rs`). Off means genuinely off: the
    /// phases hold no-op handles and skip even their clock reads.
    pub metrics: bool,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            max_iterations: 120,
            max_millis: None,
            solver: SolverConfig::default(),
            exec_max_steps: 100_000,
            exec_max_path: 256,
            max_refine_depth: 24,
            max_refine_calls: 256,
            max_expansion: 24,
            max_feasibility_probes: 8,
            deletion_check: true,
            model_counting: false,
            deletion_ratio: 0.9,
            path_reduction: true,
            track_coverage: false,
            max_validation_rounds: 6,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            unsat_prefix_capacity: 512,
            screen_domain: cpr_analysis::ScreenDomain::Zones,
            metrics: true,
        }
    }
}

impl RepairConfig {
    /// A small-budget configuration for unit tests and examples.
    pub fn quick() -> Self {
        RepairConfig {
            max_iterations: 30,
            max_expansion: 12,
            ..RepairConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_lang::parse;

    #[test]
    fn builder_roundtrip() {
        let program = parse("program p { input x in [0, 5]; return x; }").unwrap();
        let problem = RepairProblem::new(
            "demo",
            program,
            ComponentSet::new(),
            SynthConfig::default(),
            vec![test_input(&[("x", 3)])],
        )
        .with_developer_patch("x == 0")
        .with_baseline("false")
        .with_passing_inputs(vec![test_input(&[("x", 1)])]);
        assert_eq!(problem.name, "demo");
        assert_eq!(problem.failing_inputs[0]["x"], 3);
        assert_eq!(problem.passing_inputs.len(), 1);
        assert_eq!(problem.developer_patch.as_deref(), Some("x == 0"));
        assert_eq!(problem.baseline_expr.as_deref(), Some("false"));
    }

    #[test]
    fn validate_catches_malformed_problems() {
        let good = parse(
            "program p {
               input x in [0, 5];
               if (__patch_cond__(x)) { return 1; }
               bug b requires (x != 0);
               return 10 / x;
             }",
        )
        .unwrap();
        let base = RepairProblem::new(
            "demo",
            good.clone(),
            ComponentSet::new().with_variables(["x"]),
            SynthConfig::default(),
            vec![test_input(&[("x", 0)])],
        );
        base.validate().unwrap();

        // No failing input.
        let mut p = base.clone();
        p.failing_inputs.clear();
        assert!(p.validate().unwrap_err().contains("failing input"));

        // Input outside the declared range.
        let mut p = base.clone();
        p.failing_inputs = vec![test_input(&[("x", 99)])];
        assert!(p.validate().unwrap_err().contains("outside declared range"));

        // Unknown input name.
        let mut p = base.clone();
        p.failing_inputs = vec![test_input(&[("zz", 0)])];
        assert!(p.validate().unwrap_err().contains("unknown input"));

        // Hole-kind mismatch.
        let mut p = base.clone();
        p.synth.hole_kind = cpr_lang::HoleKind::IntExpr;
        assert!(p.validate().unwrap_err().contains("hole is Cond"));

        // No hole at all.
        let mut p = base.clone();
        p.program = parse("program q { input x in [0, 5]; return x; }").unwrap();
        assert!(p.validate().unwrap_err().contains("no patch hole"));

        // No specification.
        let mut p = base;
        p.program = parse(
            "program q { input x in [0, 5]; if (__patch_cond__(x)) { return 1; } return x; }",
        )
        .unwrap();
        assert!(p.validate().unwrap_err().contains("specification"));
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = RepairConfig::quick();
        let d = RepairConfig::default();
        assert!(q.max_iterations < d.max_iterations);
    }
}
