//! Concolic program repair — the core algorithms of the PLDI 2021 paper
//! *"Concolic Program Repair"* (Shariffdeen, Noller, Grunske, Roychoudhury).
//!
//! The crate wires the substrate crates together:
//!
//! * [`cpr_synth`] enumerates patch templates (Phase 1, §3.3);
//! * [`cpr_concolic`] explores the input space, injecting patch formulas
//!   into path constraints (Phase 2, §3.4);
//! * [`reduce`](mod@reduce) implements Algorithms 2 and 3 — patch-pool
//!   reduction and abstract-patch refinement over exact parameter regions
//!   (Phase 3, §3.5 and §4);
//! * [`repair`] runs the full anytime loop of Algorithm 1 and produces a
//!   [`RepairReport`] carrying every statistic of the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use cpr_core::{repair, RepairConfig, RepairProblem, test_input};
//! use cpr_lang::{parse, check};
//! use cpr_synth::{ComponentSet, SynthConfig};
//!
//! # fn main() -> Result<(), cpr_lang::LangError> {
//! let program = parse(
//!     "program demo {
//!        input x in [-10, 10];
//!        if (__patch_cond__(x)) { return 1; }
//!        bug div_by_zero requires (x != 0);
//!        return 100 / x;
//!      }",
//! )?;
//! check(&program)?;
//!
//! let problem = RepairProblem::new(
//!     "demo",
//!     program,
//!     ComponentSet::new()
//!         .with_all_comparisons()
//!         .with_variables(["x"])
//!         .with_constants(&[0]),
//!     SynthConfig::default(),
//!     vec![test_input(&[("x", 0)])],
//! )
//! .with_developer_patch("x == 0");
//!
//! let report = repair(&problem, &RepairConfig::quick());
//! assert!(report.p_final <= report.p_init);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
pub mod driver;
pub mod expand;
mod lower;
mod problem;
mod ranking;
pub mod reduce;
mod repair;
mod session;
mod synthesize;

pub use apply::{apply_patch, term_to_expr};
pub use cpr_analysis::ScreenDomain;
pub use driver::{
    check_snapshot_header, subject_digest, RepairDriver, SnapshotError, StepStatus, StopReason,
    MIN_SNAPSHOT_VERSION, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use expand::{expand, ExpandOutcome, ExpandStats};
pub use lower::{lower_expr, lower_expr_src, LowerError};
pub use problem::{test_input, RepairConfig, RepairProblem, TestInput};
pub use ranking::{rank_order, PoolEntry, RankScore};
pub use reduce::{reduce, refine_patch, ReduceStats};
pub use repair::{developer_rank, equivalent, repair, RankedPatch, RepairReport};
pub use session::Session;
pub use synthesize::{build_patch_pool, SynthStats};
