//! Component-based synthesizer for concolic program repair.
//!
//! Implements Phase 1 of the paper's Algorithm 1 (§3.3): given a
//! [`ComponentSet`] (program variables, constants, operators) and the
//! kind of the patch hole, the synthesizer [`enumerate`]s candidate patch
//! templates (expression trees). Candidates carrying template parameters
//! become [`AbstractPatch`]es whose parameter constraint `T_ρ` starts as the
//! full parameter range and is refined during the repair loop.
//!
//! Validation of candidates against the initial test case requires the
//! solver and the concolic engine, and therefore lives in `cpr-core`
//! (the `synthesize` entry point there builds the initial patch pool).
//!
//! # Example
//!
//! ```
//! use cpr_synth::{enumerate, ComponentSet, SynthConfig};
//! use cpr_smt::TermPool;
//!
//! let mut pool = TermPool::new();
//! let components = ComponentSet::new()
//!     .with_all_comparisons()
//!     .with_logic()
//!     .with_variables(["x", "y"])
//!     .with_constants(&[0]);
//! let candidates = enumerate(&mut pool, &components, &SynthConfig::default());
//! // The paper's Figure-1 templates are among the candidates:
//! let rendered: Vec<String> = candidates.iter().map(|c| pool.display(c.theta)).collect();
//! assert!(rendered.contains(&"(>= x a)".to_string()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod components;
mod enumerate;
mod patch;

pub use components::{Component, ComponentSet};
pub use enumerate::{enumerate, param_vars, PatchCandidate, SynthConfig, PARAM_NAMES};
pub use patch::AbstractPatch;
