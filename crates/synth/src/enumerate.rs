//! Typed bottom-up enumeration of patch template candidates.
//!
//! The synthesizer generates expression trees from the available components
//! (§3.3 of the paper): program variables, template parameters, constants,
//! arithmetic operators, comparisons, and logical connectives. All candidate
//! templates are deduplicated through the hash-consing pool and produced in
//! a deterministic order.

use cpr_lang::HoleKind;
use cpr_smt::{ArithOp, CmpOp, Sort, TermData, TermId, TermPool, VarId};

use crate::components::ComponentSet;

/// Tuning knobs for enumeration. Defaults correspond to the paper's
/// experimental setup (parameters in `[-10, 10]`, up to two parameters per
/// template, pairwise conjunction/disjunction of simple atoms).
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Kind of expression expected by the hole.
    pub hole_kind: HoleKind,
    /// Inclusive parameter range (the paper's default is `[-10, 10]`).
    pub param_range: (i64, i64),
    /// Maximum number of distinct template parameters per candidate.
    pub max_params: usize,
    /// Comparison operators allowed inside paired (`∧`/`∨`) templates.
    pub pair_ops: Vec<CmpOp>,
    /// Include the constant templates `true` / `false` (functionality
    /// deletion candidates, deprioritized later by ranking).
    pub include_constants: bool,
    /// Additional patch templates in SMT-LIB syntax (paper §3.3: "more
    /// components can be easily added to our synthesizer by providing them
    /// in the SMT-LIB format"). Symbols named `a`–`d` become template
    /// parameters; other symbols are program variables. Malformed or
    /// ill-sorted templates are skipped.
    pub extra_templates: Vec<String>,
    /// Hard cap on the number of candidates generated.
    pub max_candidates: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            hole_kind: HoleKind::Cond,
            param_range: (-10, 10),
            max_params: 2,
            pair_ops: vec![CmpOp::Eq, CmpOp::Lt, CmpOp::Ge],
            include_constants: true,
            extra_templates: Vec::new(),
            max_candidates: 4096,
        }
    }
}

/// An enumerated template candidate, prior to validation: `θ` plus the
/// parameters it uses (in order of first occurrence).
#[derive(Debug, Clone)]
pub struct PatchCandidate {
    /// Candidate template expression.
    pub theta: TermId,
    /// Parameters used by the template.
    pub params: Vec<VarId>,
}

/// Names used for template parameters, in allocation order.
pub const PARAM_NAMES: [&str; 4] = ["a", "b", "c", "d"];

/// Interns the parameter variables `a, b, c, …` in `pool` and returns them.
pub fn param_vars(pool: &mut TermPool, n: usize) -> Vec<VarId> {
    PARAM_NAMES
        .iter()
        .take(n)
        .map(|name| pool.var(name, Sort::Int))
        .collect()
}

/// Enumerates candidate templates for the hole described by `config` from
/// the given components. Deterministic; deduplicated; capped at
/// `config.max_candidates`.
pub fn enumerate(
    pool: &mut TermPool,
    components: &ComponentSet,
    config: &SynthConfig,
) -> Vec<PatchCandidate> {
    let mut out = match config.hole_kind {
        HoleKind::Cond => enumerate_cond(pool, components, config),
        HoleKind::IntExpr => enumerate_int(pool, components, config),
    };
    append_extra_templates(pool, config, &mut out);
    out
}

/// Parses `config.extra_templates` (SMT-LIB syntax) and appends them as
/// candidates; the parameter variables they use are the symbols named in
/// [`PARAM_NAMES`]. Ill-sorted or duplicate templates are skipped.
fn append_extra_templates(
    pool: &mut TermPool,
    config: &SynthConfig,
    out: &mut Vec<PatchCandidate>,
) {
    let expected = match config.hole_kind {
        HoleKind::Cond => Sort::Bool,
        HoleKind::IntExpr => Sort::Int,
    };
    for src in &config.extra_templates {
        if out.len() >= config.max_candidates {
            return;
        }
        let Ok(theta) = pool.parse_term(src) else {
            continue;
        };
        if pool.sort(theta) != expected || out.iter().any(|c| c.theta == theta) {
            continue;
        }
        let params: Vec<VarId> = pool
            .vars_of(theta)
            .into_iter()
            .filter(|&v| PARAM_NAMES.contains(&pool.var_name(v)))
            .collect();
        out.push(PatchCandidate { theta, params });
    }
}

/// Integer building blocks: program variables, then `var op var` composites
/// over the available arithmetic ops (commutative ops emitted once).
fn int_blocks(pool: &mut TermPool, components: &ComponentSet) -> Vec<TermId> {
    let vars: Vec<TermId> = components
        .variables()
        .iter()
        .map(|v| pool.named_var(v, Sort::Int))
        .collect();
    let mut blocks = vars.clone();
    for &op in &components.arith_ops() {
        for (i, &lhs) in vars.iter().enumerate() {
            for (j, &rhs) in vars.iter().enumerate() {
                if i == j {
                    continue;
                }
                // Commutative ops: canonical order only.
                if matches!(op, ArithOp::Add | ArithOp::Mul) && i > j {
                    continue;
                }
                let t = pool.arith(op, lhs, rhs);
                if !blocks.contains(&t) {
                    blocks.push(t);
                }
            }
        }
    }
    blocks
}

fn enumerate_cond(
    pool: &mut TermPool,
    components: &ComponentSet,
    config: &SynthConfig,
) -> Vec<PatchCandidate> {
    let mut out: Vec<PatchCandidate> = Vec::new();
    let mut seen: Vec<TermId> = Vec::new();
    let params = param_vars(pool, config.max_params);
    let blocks = int_blocks(pool, components);
    let consts = components.constants();
    let cmp_ops = components.cmp_ops();
    let var_terms: Vec<TermId> = components
        .variables()
        .iter()
        .map(|v| pool.named_var(v, Sort::Int))
        .collect();

    let push = |pool: &mut TermPool,
                theta: TermId,
                used: &[VarId],
                out: &mut Vec<PatchCandidate>,
                seen: &mut Vec<TermId>| {
        if out.len() >= config.max_candidates {
            return;
        }
        if matches!(pool.data(theta), TermData::BoolConst(_)) && !config.include_constants {
            return;
        }
        if seen.contains(&theta) {
            return;
        }
        seen.push(theta);
        out.push(PatchCandidate {
            theta,
            params: used.to_vec(),
        });
    };

    // 1. Constant templates (functionality-deletion candidates).
    if config.include_constants {
        let t = pool.tt();
        push(pool, t, &[], &mut out, &mut seen);
        let f = pool.ff();
        push(pool, f, &[], &mut out, &mut seen);
    }

    // 2. Single atoms: block ⋈ (fresh parameter | constant | other var).
    if !params.is_empty() {
        let p0 = pool.var_term(params[0]);
        for &lhs in &blocks {
            for &op in &cmp_ops {
                let t = pool.cmp(op, lhs, p0);
                push(pool, t, &params[..1], &mut out, &mut seen);
            }
        }
    }
    for &lhs in &blocks {
        for &c in &consts {
            let rhs = pool.int(c);
            for &op in &cmp_ops {
                let t = pool.cmp(op, lhs, rhs);
                push(pool, t, &[], &mut out, &mut seen);
            }
        }
    }
    for (i, &lhs) in var_terms.iter().enumerate() {
        for (j, &rhs) in var_terms.iter().enumerate() {
            if i >= j {
                continue;
            }
            for &op in &cmp_ops {
                let t = pool.cmp(op, lhs, rhs);
                push(pool, t, &[], &mut out, &mut seen);
            }
        }
    }

    // 3. Pairs of simple parameterized atoms over distinct variables:
    //    (x ⋈ a) ∧/∨ (y ⋈ b) — the shape of the paper's patch 3.
    if components.has_logic() && params.len() >= 2 && !var_terms.is_empty() {
        let pa = pool.var_term(params[0]);
        let pb = pool.var_term(params[1]);
        for (i, &v1) in var_terms.iter().enumerate() {
            for (j, &v2) in var_terms.iter().enumerate() {
                if i > j {
                    continue;
                }
                for (oi, &op1) in config.pair_ops.iter().enumerate() {
                    if !cmp_ops.contains(&op1) {
                        continue;
                    }
                    for (oj, &op2) in config.pair_ops.iter().enumerate() {
                        if !cmp_ops.contains(&op2) {
                            continue;
                        }
                        // Same-variable pairs (bounds checks like
                        // `x < a ∨ x ≥ b`): the operator order is
                        // canonicalized because the two parameters are
                        // interchangeable.
                        if i == j && oi > oj {
                            continue;
                        }
                        let a1 = pool.cmp(op1, v1, pa);
                        let a2 = pool.cmp(op2, v2, pb);
                        let both = [params[0], params[1]];
                        let conj = pool.and(a1, a2);
                        push(pool, conj, &both, &mut out, &mut seen);
                        let disj = pool.or(a1, a2);
                        push(pool, disj, &both, &mut out, &mut seen);
                    }
                }
            }
        }
    }

    out
}

fn enumerate_int(
    pool: &mut TermPool,
    components: &ComponentSet,
    config: &SynthConfig,
) -> Vec<PatchCandidate> {
    let mut out: Vec<PatchCandidate> = Vec::new();
    let mut seen: Vec<TermId> = Vec::new();
    let params = param_vars(pool, config.max_params.max(1));
    let p0 = pool.var_term(params[0]);
    let var_terms: Vec<TermId> = components
        .variables()
        .iter()
        .map(|v| pool.named_var(v, Sort::Int))
        .collect();
    let consts = components.constants();

    let push =
        |theta: TermId, used: &[VarId], out: &mut Vec<PatchCandidate>, seen: &mut Vec<TermId>| {
            if out.len() >= config.max_candidates || seen.contains(&theta) {
                return;
            }
            seen.push(theta);
            out.push(PatchCandidate {
                theta,
                params: used.to_vec(),
            });
        };

    // 1. Bare parameter and bare variables / constants.
    push(p0, &params[..1], &mut out, &mut seen);
    for &v in &var_terms {
        push(v, &[], &mut out, &mut seen);
    }
    for &c in &consts {
        let t = pool.int(c);
        push(t, &[], &mut out, &mut seen);
    }

    // 2. var op param, var op const, var op var.
    for &op in &components.arith_ops() {
        for &v in &var_terms {
            let t = pool.arith(op, v, p0);
            push(t, &params[..1], &mut out, &mut seen);
            // param op var for non-commutative ops.
            if !matches!(op, ArithOp::Add | ArithOp::Mul) {
                let t = pool.arith(op, p0, v);
                push(t, &params[..1], &mut out, &mut seen);
            }
            for &c in &consts {
                let ct = pool.int(c);
                let t = pool.arith(op, v, ct);
                push(t, &[], &mut out, &mut seen);
            }
        }
        for (i, &v1) in var_terms.iter().enumerate() {
            for (j, &v2) in var_terms.iter().enumerate() {
                if i == j || (matches!(op, ArithOp::Add | ArithOp::Mul) && i > j) {
                    continue;
                }
                let t = pool.arith(op, v1, v2);
                push(t, &[], &mut out, &mut seen);
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_smt::Model;

    fn demo_components() -> ComponentSet {
        ComponentSet::new()
            .with_all_comparisons()
            .with_logic()
            .with_variables(["x", "y"])
            .with_constants(&[0])
    }

    #[test]
    fn enumeration_is_deterministic() {
        let mut p1 = TermPool::new();
        let mut p2 = TermPool::new();
        let cfg = SynthConfig::default();
        let c = demo_components();
        let r1: Vec<String> = enumerate(&mut p1, &c, &cfg)
            .iter()
            .map(|c| p1.display(c.theta))
            .collect();
        let r2: Vec<String> = enumerate(&mut p2, &c, &cfg)
            .iter()
            .map(|c| p2.display(c.theta))
            .collect();
        assert_eq!(r1, r2);
        assert!(!r1.is_empty());
    }

    #[test]
    fn contains_paper_templates() {
        let mut pool = TermPool::new();
        let cfg = SynthConfig::default();
        let c = demo_components();
        let cands = enumerate(&mut pool, &c, &cfg);
        let shown: Vec<String> = cands.iter().map(|c| pool.display(c.theta)).collect();
        // The three templates of the paper's Figure 1 (single-parameter
        // atoms always use the first parameter name, so the paper's `y < b`
        // appears alpha-renamed as `y < a`).
        assert!(shown.contains(&"(>= x a)".to_owned()), "{shown:?}");
        assert!(shown.contains(&"(< y a)".to_owned()), "{shown:?}");
        assert!(
            shown.contains(&"(or (= x a) (= y b))".to_owned()),
            "{shown:?}"
        );
    }

    #[test]
    fn constants_included_and_excludable() {
        let mut pool = TermPool::new();
        let c = demo_components();
        let with = enumerate(&mut pool, &c, &SynthConfig::default());
        let shown: Vec<String> = with.iter().map(|c| pool.display(c.theta)).collect();
        assert!(shown.contains(&"true".to_owned()));
        assert!(shown.contains(&"false".to_owned()));

        let without = enumerate(
            &mut pool,
            &c,
            &SynthConfig {
                include_constants: false,
                ..SynthConfig::default()
            },
        );
        let shown: Vec<String> = without.iter().map(|c| pool.display(c.theta)).collect();
        assert!(!shown.contains(&"true".to_owned()));
    }

    #[test]
    fn params_tracked_per_candidate() {
        let mut pool = TermPool::new();
        let cfg = SynthConfig::default();
        let c = demo_components();
        let cands = enumerate(&mut pool, &c, &cfg);
        for cand in &cands {
            let theta_vars = pool.vars_of(cand.theta);
            for p in &cand.params {
                assert!(
                    theta_vars.contains(p),
                    "unused param in {}",
                    pool.display(cand.theta)
                );
            }
        }
        // Some candidate uses two params.
        assert!(cands.iter().any(|c| c.params.len() == 2));
    }

    #[test]
    fn no_duplicate_candidates() {
        let mut pool = TermPool::new();
        let cands = enumerate(&mut pool, &demo_components(), &SynthConfig::default());
        let mut thetas: Vec<TermId> = cands.iter().map(|c| c.theta).collect();
        let before = thetas.len();
        thetas.sort();
        thetas.dedup();
        assert_eq!(before, thetas.len());
    }

    #[test]
    fn int_hole_enumeration() {
        let mut pool = TermPool::new();
        let c = ComponentSet::new()
            .with_arith(&[ArithOp::Add, ArithOp::Sub])
            .with_variables(["n"])
            .with_constants(&[1]);
        let cfg = SynthConfig {
            hole_kind: HoleKind::IntExpr,
            ..SynthConfig::default()
        };
        let cands = enumerate(&mut pool, &c, &cfg);
        let shown: Vec<String> = cands.iter().map(|c| pool.display(c.theta)).collect();
        assert!(shown.contains(&"a".to_owned()));
        assert!(shown.contains(&"n".to_owned()));
        assert!(shown.contains(&"(+ n a)".to_owned()));
        assert!(shown.contains(&"(- n a)".to_owned()));
        assert!(shown.contains(&"(- a n)".to_owned()));
        assert!(shown.contains(&"(+ n 1)".to_owned()));
    }

    #[test]
    fn smtlib_extra_templates_are_appended() {
        let mut pool = TermPool::new();
        let cfg = SynthConfig {
            extra_templates: vec![
                "(>= (* x 2) a)".to_owned(), // valid, parameterized
                "(+ x a)".to_owned(),        // wrong sort for a cond hole
                "(oops x)".to_owned(),       // malformed: skipped
                "(>= x a)".to_owned(),       // duplicate of an enumerated one
            ],
            ..SynthConfig::default()
        };
        let cands = enumerate(&mut pool, &demo_components(), &cfg);
        let shown: Vec<String> = cands.iter().map(|c| pool.display(c.theta)).collect();
        assert!(shown.contains(&"(>= (* x 2) a)".to_owned()), "{shown:?}");
        assert!(!shown.contains(&"(+ x a)".to_owned()));
        // The custom template's parameter was detected.
        let custom = cands
            .iter()
            .find(|c| pool.display(c.theta) == "(>= (* x 2) a)")
            .unwrap();
        assert_eq!(custom.params.len(), 1);
        // No duplicates were introduced.
        let mut thetas: Vec<_> = cands.iter().map(|c| c.theta).collect();
        let before = thetas.len();
        thetas.sort();
        thetas.dedup();
        assert_eq!(before, thetas.len());
    }

    #[test]
    fn template_space_size_is_stable() {
        // Regression guard: accidental grammar changes move every |P_Init|
        // column of the evaluation, so the candidate count for the standard
        // two-variable component set is pinned.
        let mut pool = TermPool::new();
        let cands = enumerate(&mut pool, &demo_components(), &SynthConfig::default());
        assert_eq!(cands.len(), 74);
        let params: usize = cands.iter().map(|c| c.params.len()).sum();
        assert_eq!(params, 96);
    }

    #[test]
    fn max_candidates_cap_is_respected() {
        let mut pool = TermPool::new();
        let cfg = SynthConfig {
            max_candidates: 5,
            ..SynthConfig::default()
        };
        let cands = enumerate(&mut pool, &demo_components(), &cfg);
        assert_eq!(cands.len(), 5);
    }

    #[test]
    fn candidate_templates_evaluate() {
        let mut pool = TermPool::new();
        let cands = enumerate(&mut pool, &demo_components(), &SynthConfig::default());
        // Every candidate evaluates totally under an arbitrary model.
        let mut m = Model::new();
        if let Some(x) = pool.find_var("x") {
            m.set(x, 3i64);
        }
        for c in cands {
            let _ = m.eval(&pool, c.theta);
        }
    }
}
