//! Language components: the building blocks handed to the synthesizer.
//!
//! The paper's evaluation reports, per subject, the number of *general*
//! components (operators from the synthesis language) and *custom* components
//! (program variables and constants specific to the subject). This module
//! models both.

use cpr_smt::{ArithOp, CmpOp};

/// A single synthesis component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Component {
    /// A program variable visible at the patch location (custom).
    Variable(String),
    /// An integer constant (custom).
    Constant(i64),
    /// An arithmetic operator (general).
    Arith(ArithOp),
    /// A comparison operator (general).
    Cmp(CmpOp),
    /// Logical conjunction of two atoms (general).
    LogicAnd,
    /// Logical disjunction of two atoms (general).
    LogicOr,
}

impl Component {
    /// Whether this is a *general* (language) component as opposed to a
    /// *custom* (subject-specific) one.
    pub fn is_general(&self) -> bool {
        !matches!(self, Component::Variable(_) | Component::Constant(_))
    }
}

/// The full component set for one synthesis run.
#[derive(Debug, Clone, Default)]
pub struct ComponentSet {
    components: Vec<Component>,
}

impl ComponentSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component (duplicates are ignored).
    pub fn add(&mut self, c: Component) -> &mut Self {
        if !self.components.contains(&c) {
            self.components.push(c);
        }
        self
    }

    /// Adds all standard comparison operators.
    pub fn with_all_comparisons(mut self) -> Self {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            self.add(Component::Cmp(op));
        }
        self
    }

    /// Adds the given arithmetic operators.
    pub fn with_arith(mut self, ops: &[ArithOp]) -> Self {
        for &op in ops {
            self.add(Component::Arith(op));
        }
        self
    }

    /// Adds logical conjunction and disjunction.
    pub fn with_logic(mut self) -> Self {
        self.add(Component::LogicAnd);
        self.add(Component::LogicOr);
        self
    }

    /// Adds program variables (custom components).
    pub fn with_variables<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for n in names {
            self.add(Component::Variable(n.into()));
        }
        self
    }

    /// Adds integer constants (custom components).
    pub fn with_constants(mut self, consts: &[i64]) -> Self {
        for &c in consts {
            self.add(Component::Constant(c));
        }
        self
    }

    /// All components.
    pub fn iter(&self) -> impl Iterator<Item = &Component> {
        self.components.iter()
    }

    /// The variable names, in insertion order.
    pub fn variables(&self) -> Vec<&str> {
        self.components
            .iter()
            .filter_map(|c| match c {
                Component::Variable(v) => Some(v.as_str()),
                _ => None,
            })
            .collect()
    }

    /// The constants, in insertion order.
    pub fn constants(&self) -> Vec<i64> {
        self.components
            .iter()
            .filter_map(|c| match c {
                Component::Constant(v) => Some(*v),
                _ => None,
            })
            .collect()
    }

    /// The arithmetic operators.
    pub fn arith_ops(&self) -> Vec<ArithOp> {
        self.components
            .iter()
            .filter_map(|c| match c {
                Component::Arith(op) => Some(*op),
                _ => None,
            })
            .collect()
    }

    /// The comparison operators.
    pub fn cmp_ops(&self) -> Vec<CmpOp> {
        self.components
            .iter()
            .filter_map(|c| match c {
                Component::Cmp(op) => Some(*op),
                _ => None,
            })
            .collect()
    }

    /// Whether logical connectives are available.
    pub fn has_logic(&self) -> bool {
        self.components
            .iter()
            .any(|c| matches!(c, Component::LogicAnd | Component::LogicOr))
    }

    /// Number of general components (the `General` column of Table 1).
    pub fn general_count(&self) -> usize {
        // The paper groups operators coarsely; we count operator *kinds*:
        // comparisons, each arithmetic op class, and logic.
        let mut n = 0;
        if !self.cmp_ops().is_empty() {
            n += 1;
        }
        n += self.arith_ops().len();
        if self.has_logic() {
            n += 1;
        }
        n
    }

    /// Number of custom components (the `Custom` column of Table 1).
    pub fn custom_count(&self) -> usize {
        self.components.iter().filter(|c| !c.is_general()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_components() {
        let set = ComponentSet::new()
            .with_all_comparisons()
            .with_arith(&[ArithOp::Add, ArithOp::Mul])
            .with_logic()
            .with_variables(["x", "y"])
            .with_constants(&[0, 1]);
        assert_eq!(set.variables(), vec!["x", "y"]);
        assert_eq!(set.constants(), vec![0, 1]);
        assert_eq!(set.arith_ops(), vec![ArithOp::Add, ArithOp::Mul]);
        assert_eq!(set.cmp_ops().len(), 6);
        assert!(set.has_logic());
        assert_eq!(set.custom_count(), 4);
        assert_eq!(set.general_count(), 4); // cmp + 2 arith + logic
    }

    #[test]
    fn duplicates_ignored() {
        let set = ComponentSet::new()
            .with_variables(["x", "x"])
            .with_constants(&[0, 0]);
        assert_eq!(set.custom_count(), 2);
    }

    #[test]
    fn generality_classification() {
        assert!(Component::Cmp(CmpOp::Lt).is_general());
        assert!(Component::LogicOr.is_general());
        assert!(!Component::Variable("x".into()).is_general());
        assert!(!Component::Constant(3).is_general());
    }
}
