//! Abstract patches: the 3-tuple `(θ_ρ, T_ρ, ψ_ρ)` of the paper's §3.1.

use cpr_smt::{Model, Region, TermId, TermPool, VarId};

/// An abstract patch: a template expression `θ_ρ` over program variables and
/// template parameters, together with the parameter constraint `T_ρ`
/// represented exactly as a [`Region`] (disjunction of boxes).
///
/// The patch formula `ψ_ρ` of the paper is not stored: it is *derived* by
/// the concolic executor when it substitutes the program variables in `θ_ρ`
/// by their symbolic values at the patch location (see
/// `cpr_concolic::HolePatch`).
#[derive(Debug, Clone)]
pub struct AbstractPatch {
    /// Stable identifier within the patch pool.
    pub id: usize,
    /// The template expression `θ_ρ(X_P, A)`.
    pub theta: TermId,
    /// The template parameters `A` (empty for concrete patches).
    pub params: Vec<VarId>,
    /// The parameter constraint `T_ρ(A)`.
    pub constraint: Region,
}

impl AbstractPatch {
    /// Creates a patch. For parameterless (concrete) patches pass an empty
    /// `params` list and a trivially-true region.
    pub fn new(id: usize, theta: TermId, params: Vec<VarId>, constraint: Region) -> Self {
        AbstractPatch {
            id,
            theta,
            params,
            constraint,
        }
    }

    /// Creates a concrete (parameterless) patch.
    pub fn concrete(id: usize, theta: TermId) -> Self {
        use cpr_smt::ParamBox;
        AbstractPatch {
            id,
            theta,
            params: Vec::new(),
            constraint: Region::from_boxes(Vec::new(), vec![ParamBox::new(Vec::new())]),
        }
    }

    /// Whether the patch has no template parameters.
    pub fn is_concrete(&self) -> bool {
        self.params.is_empty()
    }

    /// Number of concrete patches covered (`# Conc. Patches` in Figure 1).
    pub fn concrete_count(&self) -> u128 {
        self.constraint.volume()
    }

    /// Whether the patch has been refined away entirely (`T_ρ = False`).
    pub fn is_exhausted(&self) -> bool {
        self.constraint.is_empty()
    }

    /// `T_ρ(A)` as a term for solver queries.
    pub fn constraint_term(&self, pool: &mut TermPool) -> TermId {
        self.constraint.to_term(pool)
    }

    /// A representative concrete parameter assignment, used to drive
    /// concolic execution of the patched program. `None` when exhausted.
    pub fn representative(&self) -> Option<Model> {
        if self.is_concrete() {
            Some(Model::new())
        } else {
            self.constraint.sample()
        }
    }

    /// Renders the patch as `θ  with  T` for reports.
    pub fn display(&self, pool: &TermPool) -> String {
        if self.is_concrete() {
            pool.display(self.theta)
        } else {
            format!(
                "{}  with  {}",
                pool.display(self.theta),
                self.constraint.display(pool)
            )
        }
    }

    /// Replaces the parameter constraint, preserving identity and template.
    pub fn with_constraint(&self, constraint: Region) -> AbstractPatch {
        AbstractPatch {
            id: self.id,
            theta: self.theta,
            params: self.params.clone(),
            constraint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_smt::Sort;

    #[test]
    fn abstract_patch_accessors() {
        let mut pool = TermPool::new();
        let x = pool.named_var("x", Sort::Int);
        let a_var = pool.var("a", Sort::Int);
        let a = pool.var_term(a_var);
        let theta = pool.ge(x, a);
        let region = Region::full(vec![a_var], -10, 10);
        let p = AbstractPatch::new(0, theta, vec![a_var], region);
        assert!(!p.is_concrete());
        assert_eq!(p.concrete_count(), 21);
        assert!(!p.is_exhausted());
        let rep = p.representative().unwrap();
        let v = rep.int(a_var).unwrap();
        assert!((-10..=10).contains(&v));
        assert!(p.display(&pool).contains(">= x a"));
    }

    #[test]
    fn concrete_patch_counts_one() {
        let mut pool = TermPool::new();
        let t = pool.tt();
        let p = AbstractPatch::concrete(7, t);
        assert!(p.is_concrete());
        assert_eq!(p.concrete_count(), 1);
        assert!(p.representative().is_some());
        let term = p.clone().constraint_term(&mut pool);
        assert_eq!(pool.display(term), "true");
    }

    #[test]
    fn exhausted_patch() {
        let mut pool = TermPool::new();
        let a_var = pool.var("a", Sort::Int);
        let x = pool.named_var("x", Sort::Int);
        let a = pool.var_term(a_var);
        let theta = pool.ge(x, a);
        let p = AbstractPatch::new(0, theta, vec![a_var], Region::empty(vec![a_var]));
        assert!(p.is_exhausted());
        assert_eq!(p.concrete_count(), 0);
        assert!(p.representative().is_none());
    }

    #[test]
    fn with_constraint_preserves_template() {
        let mut pool = TermPool::new();
        let a_var = pool.var("a", Sort::Int);
        let x = pool.named_var("x", Sort::Int);
        let a = pool.var_term(a_var);
        let theta = pool.ge(x, a);
        let p = AbstractPatch::new(3, theta, vec![a_var], Region::full(vec![a_var], -10, 10));
        let narrowed = p.with_constraint(Region::full(vec![a_var], -10, 4));
        assert_eq!(narrowed.id, 3);
        assert_eq!(narrowed.theta, theta);
        assert_eq!(narrowed.concrete_count(), 15);
    }
}
