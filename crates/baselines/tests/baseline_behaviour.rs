//! Cross-baseline integration tests on registry subjects: determinism,
//! assert-driven subjects, and the relative-correctness ordering the
//! paper's Table 2 reports.

use cpr_baselines::{angelix, cegis, extractfix, prophet};
use cpr_core::RepairConfig;
use cpr_subjects::all_subjects;

fn quick() -> RepairConfig {
    RepairConfig {
        max_iterations: 20,
        max_millis: Some(6_000),
        max_expansion: 8,
        ..RepairConfig::default()
    }
}

fn subject(bug: &str) -> cpr_subjects::Subject {
    all_subjects()
        .into_iter()
        .find(|s| s.bug_id == bug)
        .expect("subject registered")
}

#[test]
fn cegis_handles_assert_driven_subjects() {
    // ManyBugs/865f7b2 has no bug marker — its oracle is assertions.
    let s = subject("865f7b2");
    let r = cegis(&s.problem(), &quick());
    assert!(r.p_init > 0);
    assert!(r.p_final <= r.p_init);
}

#[test]
fn cegis_never_reduces_more_than_its_discards() {
    for bug in ["CVE-2017-7595", "CVE-2016-9387"] {
        let s = subject(bug);
        let r = cegis(&s.problem(), &quick());
        // p_final = p_init - discarded by construction; ratio is tiny.
        assert!(r.reduction_ratio() < 15.0, "{bug}: {}", r.reduction_ratio());
    }
}

#[test]
fn extractfix_needs_a_reachable_crash_constraint() {
    // On a subject whose failing path reaches the sanitizer, a patch
    // implying crash-freedom is produced.
    let s = subject("CVE-2016-8691");
    let r = extractfix(&s.problem(), &quick());
    assert!(r.generated, "no patch for {}", s.name());
    // On the assert-only ManyBugs subject there is no crash constraint to
    // extract (the paper: "these cannot be handled by ExtractFix").
    let s = subject("865f7b2");
    let r = extractfix(&s.problem(), &quick());
    assert!(!r.generated);
}

#[test]
fn prophet_and_angelix_are_deterministic() {
    let s = subject("CVE-2017-5969");
    let p1 = prophet(&s.problem(), &quick());
    let p2 = prophet(&s.problem(), &quick());
    assert_eq!(p1.patch, p2.patch);
    assert_eq!(p1.plausible, p2.plausible);
    let a1 = angelix(&s.problem(), &quick());
    let a2 = angelix(&s.problem(), &quick());
    assert_eq!(a1.patch, a2.patch);
}

#[test]
fn baselines_respect_the_paper_correctness_ordering_on_a_slice() {
    // Angelix (test-driven, one failing test) should not beat the
    // constraint-driven ExtractFix-style tool across this slice.
    let slice = ["CVE-2016-8691", "CVE-2017-7595", "CVE-2017-15025"];
    let mut angelix_ok = 0;
    let mut extractfix_ok = 0;
    for bug in slice {
        let s = subject(bug);
        if angelix(&s.problem(), &quick()).correct {
            angelix_ok += 1;
        }
        if extractfix(&s.problem(), &quick()).correct {
            extractfix_ok += 1;
        }
    }
    assert!(
        extractfix_ok >= angelix_ok,
        "extractfix {extractfix_ok} < angelix {angelix_ok}"
    );
}
