//! A simplified ExtractFix-style repairer (Gao et al., TOSEM 2021).
//!
//! ExtractFix extracts a *crash-free constraint* from the sanitizer at the
//! crash location and back-propagates it (weakest precondition) to the
//! patch location, then synthesizes one patch implying it. In this
//! reproduction the crash-free constraint is the subject's specification
//! `σ`; back-propagation along the single failing path is performed by the
//! concolic executor's symbolic substitution (the captured `σ` is already
//! expressed over the program inputs at the patch location). Synthesis
//! picks the first concrete candidate whose guarded path makes `σ`
//! unviolable on the failing path.

use std::time::Instant;

use cpr_concolic::HolePatch;
use cpr_core::{
    build_patch_pool, equivalent, lower_expr_src, rank_order, RepairConfig, RepairProblem, Session,
};
use cpr_smt::{Model, SatResult, TermData};

/// Result of an ExtractFix-style run.
#[derive(Debug, Clone)]
pub struct ExtractFixReport {
    /// Subject name.
    pub subject: String,
    /// The single generated patch, rendered.
    pub patch: Option<String>,
    /// Whether a plausible patch was generated at all.
    pub generated: bool,
    /// Whether the patch is semantically equivalent to the developer patch.
    pub correct: bool,
    /// Wall-clock milliseconds.
    pub wall_millis: u64,
}

/// Runs the ExtractFix-style repairer: one failing path, one crash-free
/// constraint, one synthesized patch.
pub fn extractfix(problem: &RepairProblem, config: &RepairConfig) -> ExtractFixReport {
    let start = Instant::now();
    let mut sess = Session::new(problem, config);

    // Observe the failing path under the baseline (buggy) behaviour to
    // extract the crash-free constraint σ and the path to the crash.
    let baseline = problem
        .baseline_expr
        .as_deref()
        .and_then(|src| lower_expr_src(&mut sess.pool, src).ok())
        .unwrap_or_else(|| sess.pool.ff());
    let hole = HolePatch {
        theta: baseline,
        params: Model::new(),
    };
    let Some(failing) = problem.failing_inputs.first() else {
        return ExtractFixReport {
            subject: problem.name.clone(),
            patch: None,
            generated: false,
            correct: false,
            wall_millis: start.elapsed().as_millis() as u64,
        };
    };
    let input = sess.input_model(failing);
    let exec = sess.exec.clone();
    let run = exec.execute(&mut sess.pool, &problem.program, &input, Some(&hole));
    let Some(sigma) = run.sigma else {
        // The failing execution never reached the sanitizer: nothing to
        // extract a constraint from.
        return ExtractFixReport {
            subject: problem.name.clone(),
            patch: None,
            generated: false,
            correct: false,
            wall_millis: start.elapsed().as_millis() as u64,
        };
    };

    // Candidate patches from the shared synthesizer (identical space).
    let (entries, _) = build_patch_pool(&mut sess, problem, config);
    let order = rank_order(&sess.pool, &entries);

    // Pick the first (simplest) concrete instantiation whose guarded path
    // leaves σ unviolable: φ_ρ ∧ ¬σ must be unsatisfiable, i.e. the patch
    // implies the back-propagated crash-free constraint on this path.
    // Constant guards are skipped only when a non-constant candidate
    // qualifies (ExtractFix prefers semantic patches over early exits).
    let mut chosen: Option<cpr_smt::TermId> = None;
    let mut constant_fallback: Option<cpr_smt::TermId> = None;
    for &idx in &order {
        let patch = &entries[idx].patch;
        let rep = match patch.representative() {
            Some(r) => r,
            None => continue,
        };
        let mut map = std::collections::HashMap::new();
        for (v, val) in rep.iter() {
            let c = sess.pool.int(val.as_int().unwrap_or(0));
            map.insert(v, c);
        }
        let inst = sess.pool.substitute(patch.theta, &map);
        let mut phi = run.constraints_for_patch(&mut sess.pool, inst);
        let not_sigma = sess.pool.not(sigma);
        phi.push(not_sigma);
        if matches!(sess.check(&phi), SatResult::Unsat) {
            if matches!(sess.pool.data(inst), TermData::BoolConst(_)) {
                if constant_fallback.is_none() {
                    constant_fallback = Some(inst);
                }
            } else {
                chosen = Some(inst);
                break;
            }
        }
    }
    let chosen = chosen.or(constant_fallback);

    let (display, correct) = match chosen {
        None => (None, false),
        Some(inst) => {
            let correct = problem
                .developer_patch
                .as_deref()
                .map(|src| {
                    lower_expr_src(&mut sess.pool, src)
                        .map(|dev| equivalent(&mut sess, inst, dev))
                        .unwrap_or(false)
                })
                .unwrap_or(false);
            (Some(sess.pool.display(inst)), correct)
        }
    };
    ExtractFixReport {
        subject: problem.name.clone(),
        generated: display.is_some(),
        patch: display,
        correct,
        wall_millis: start.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_core::test_input;
    use cpr_lang::{check, parse};
    use cpr_synth::{ComponentSet, SynthConfig};

    #[test]
    fn extractfix_generates_a_patch_implying_crash_freedom() {
        let program = parse(
            "program p {
               input x in [-10, 10];
               if (__patch_cond__(x)) { return 1; }
               bug div_by_zero requires (x != 0);
               return 100 / x;
             }",
        )
        .unwrap();
        check(&program).unwrap();
        let problem = RepairProblem::new(
            "demo",
            program,
            ComponentSet::new()
                .with_all_comparisons()
                .with_variables(["x"])
                .with_constants(&[0]),
            SynthConfig::default(),
            vec![test_input(&[("x", 0)])],
        )
        .with_developer_patch("x == 0")
        .with_baseline("false");
        let report = extractfix(&problem, &RepairConfig::quick());
        assert!(report.generated, "no patch generated");
        let p = report.patch.unwrap();
        // The guard must cover x == 0 (the only crashing input).
        assert!(p.contains('x') || p == "true", "suspicious patch {p}");
    }
}
