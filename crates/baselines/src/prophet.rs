//! A simplified Prophet-style repairer (Long & Rinard, POPL 2016).
//!
//! Prophet enumerates concrete candidate patches, validates them against the
//! available test suite, and ranks the survivors with a *learned* model of
//! patch correctness. This reproduction replaces the learned model with a
//! fixed prior over the same features Prophet's model weighs most: smaller
//! expressions, comparisons against zero or program variables, and a strong
//! penalty for constant (functionality-deleting) guards. Validation is
//! purely test-based, so with the benchmark's sparse test suites the
//! top-ranked patch overfits — the behaviour Table 2 of the CPR paper
//! reports.

use std::time::Instant;

use cpr_concolic::HolePatch;
use cpr_core::{equivalent, lower_expr_src, RepairConfig, RepairProblem, Session};
use cpr_smt::{Model, TermData, TermId};
use cpr_synth::enumerate;

/// Result of a Prophet-style run.
#[derive(Debug, Clone)]
pub struct ProphetReport {
    /// Subject name.
    pub subject: String,
    /// Top-ranked plausible patch, rendered.
    pub patch: Option<String>,
    /// Whether any plausible patch was found.
    pub generated: bool,
    /// Whether the top-ranked patch matches the developer patch.
    pub correct: bool,
    /// Number of plausible (test-passing) concrete patches.
    pub plausible: usize,
    /// Wall-clock milliseconds.
    pub wall_millis: u64,
}

/// Fixed prior standing in for Prophet's learned correctness model.
fn prior(sess: &Session, inst: TermId) -> i64 {
    let mut score = 100 - sess.pool.tree_size(inst) as i64 * 5;
    match sess.pool.data(inst) {
        // Constant guards delete functionality — heavily penalized by the
        // learned model too (they rarely appear in human patches).
        TermData::BoolConst(_) => score -= 90,
        TermData::Cmp(op, _, b) => {
            // Comparisons against zero are the most common human fix shape.
            if matches!(sess.pool.data(b), TermData::IntConst(0)) {
                score += 15;
            }
            if matches!(op, cpr_smt::CmpOp::Eq | cpr_smt::CmpOp::Ne) {
                score += 5;
            }
        }
        _ => {}
    }
    score
}

/// Runs the Prophet-style repairer using only the provided tests.
pub fn prophet(problem: &RepairProblem, config: &RepairConfig) -> ProphetReport {
    let start = Instant::now();
    let mut sess = Session::new(problem, config);
    let candidates = enumerate(&mut sess.pool, &problem.components, &problem.synth);
    let (plo, phi) = problem.synth.param_range;

    // Concrete instantiation grid for parameters: a deterministic sweep
    // capped to keep the candidate count Prophet-sized.
    let mut param_values: Vec<i64> = vec![0, 1, -1, plo, phi, 2, -2, 4, 8];
    param_values.retain(|v| *v >= plo && *v <= phi);
    param_values.dedup();

    let mut plausible: Vec<(i64, TermId)> = Vec::new();
    let exec = sess.exec.clone();
    'cand: for cand in candidates {
        let assignments: Vec<Vec<i64>> = if cand.params.is_empty() {
            vec![Vec::new()]
        } else if cand.params.len() == 1 {
            param_values.iter().map(|&v| vec![v]).collect()
        } else {
            let mut out = Vec::new();
            for &a in &param_values {
                for &b in &param_values {
                    out.push(vec![a, b]);
                }
            }
            out
        };
        for point in assignments {
            if plausible.len() >= 512 {
                break 'cand;
            }
            let mut binding = Model::new();
            for (&p, &v) in cand.params.iter().zip(&point) {
                binding.set(p, v);
            }
            let hole = HolePatch {
                theta: cand.theta,
                params: binding.clone(),
            };
            // Validate on the full provided test suite.
            let mut ok = true;
            for input in problem
                .failing_inputs
                .iter()
                .chain(problem.passing_inputs.iter())
            {
                let m = sess.input_model(input);
                let run = exec.execute(&mut sess.pool, &problem.program, &m, Some(&hole));
                if run.outcome.is_failure() {
                    ok = false;
                    break;
                }
            }
            if ok {
                let mut map = std::collections::HashMap::new();
                for (&p, &v) in cand.params.iter().zip(&point) {
                    let c = sess.pool.int(v);
                    map.insert(p, c);
                }
                let inst = sess.pool.substitute(cand.theta, &map);
                let score = prior(&sess, inst);
                plausible.push((score, inst));
            }
        }
    }

    plausible.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    plausible.dedup_by_key(|(_, t)| *t);
    let top = plausible.first().map(|&(_, t)| t);
    let (display, correct) = match top {
        None => (None, false),
        Some(inst) => {
            let correct = problem
                .developer_patch
                .as_deref()
                .map(|src| {
                    lower_expr_src(&mut sess.pool, src)
                        .map(|dev| equivalent(&mut sess, inst, dev))
                        .unwrap_or(false)
                })
                .unwrap_or(false);
            (Some(sess.pool.display(inst)), correct)
        }
    };
    ProphetReport {
        subject: problem.name.clone(),
        generated: display.is_some(),
        patch: display,
        correct,
        plausible: plausible.len(),
        wall_millis: start.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_core::test_input;
    use cpr_lang::{check, parse};
    use cpr_synth::{ComponentSet, SynthConfig};

    fn problem(passing: Vec<cpr_core::TestInput>) -> RepairProblem {
        let program = parse(
            "program p {
               input x in [-10, 10];
               if (__patch_cond__(x)) { return 1; }
               bug div_by_zero requires (x != 0);
               return 100 / x;
             }",
        )
        .unwrap();
        check(&program).unwrap();
        RepairProblem::new(
            "demo",
            program,
            ComponentSet::new()
                .with_all_comparisons()
                .with_variables(["x"])
                .with_constants(&[0]),
            SynthConfig::default(),
            vec![test_input(&[("x", 0)])],
        )
        .with_developer_patch("x == 0")
        .with_passing_inputs(passing)
    }

    #[test]
    fn prophet_finds_plausible_patches() {
        let report = prophet(&problem(Vec::new()), &RepairConfig::quick());
        assert!(report.generated);
        assert!(report.plausible > 1, "search space trivially small");
    }

    #[test]
    fn prophet_prior_penalizes_constant_guards() {
        let report = prophet(&problem(Vec::new()), &RepairConfig::quick());
        let top = report.patch.unwrap();
        assert_ne!(top, "true", "prior failed to demote the tautology");
    }

    #[test]
    fn prophet_with_more_tests_narrows_the_pool() {
        let few = prophet(&problem(Vec::new()), &RepairConfig::quick());
        let more = prophet(
            &problem(vec![
                test_input(&[("x", 1)]),
                test_input(&[("x", -1)]),
                test_input(&[("x", 5)]),
            ]),
            &RepairConfig::quick(),
        );
        assert!(more.plausible <= few.plausible);
    }
}
