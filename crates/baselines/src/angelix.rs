//! A simplified Angelix-style repairer (Mechtaev et al., ICSE 2016).
//!
//! Angelix infers *angelic values* for the patch expression per test via
//! symbolic execution, then synthesizes an expression matching the angelic
//! forest. This reproduction forces the hole to each boolean value per test
//! (condition holes), records which values let the test pass, and solves for
//! a template + parameters consistent with all recorded angelic values at
//! the observed hole contexts. Purely test-driven: with the small developer
//! test suites of the benchmark it overfits, mirroring the paper's Table 2.

use std::time::Instant;

use cpr_concolic::HolePatch;
use cpr_core::{equivalent, lower_expr_src, RepairConfig, RepairProblem, Session};
use cpr_lang::HoleKind;
use cpr_smt::{Model, SatResult, TermId};
use cpr_synth::enumerate;

/// Result of an Angelix-style run.
#[derive(Debug, Clone)]
pub struct AngelixReport {
    /// Subject name.
    pub subject: String,
    /// The top-ranked synthesized patch, rendered.
    pub patch: Option<String>,
    /// Whether a plausible patch was generated.
    pub generated: bool,
    /// Whether the top-ranked patch matches the developer patch.
    pub correct: bool,
    /// Number of angelic value tuples collected.
    pub angelic_values: usize,
    /// Wall-clock milliseconds.
    pub wall_millis: u64,
}

/// One angelic observation: a test input, the symbolic hole context, and
/// the hole value that makes the test pass.
struct Angelic {
    input: Model,
    required: bool,
}

/// Runs the Angelix-style repairer using only the provided tests.
pub fn angelix(problem: &RepairProblem, config: &RepairConfig) -> AngelixReport {
    let start = Instant::now();
    let mut sess = Session::new(problem, config);
    let no_patch = AngelixReport {
        subject: problem.name.clone(),
        patch: None,
        generated: false,
        correct: false,
        angelic_values: 0,
        wall_millis: 0,
    };
    if problem.synth.hole_kind != HoleKind::Cond {
        // This simplified baseline only handles condition holes.
        return AngelixReport {
            wall_millis: start.elapsed().as_millis() as u64,
            ..no_patch
        };
    }

    // Step 1: angelic value inference. For every test, force the hole to
    // `true` and `false` and record the verdicts.
    let tt = sess.pool.tt();
    let ff = sess.pool.ff();
    let mut angelics: Vec<Angelic> = Vec::new();
    for input in problem
        .failing_inputs
        .iter()
        .chain(problem.passing_inputs.iter())
    {
        let m = sess.input_model(input);
        let exec = sess.exec.clone();
        let run_t = exec.execute(
            &mut sess.pool,
            &problem.program,
            &m,
            Some(&HolePatch {
                theta: tt,
                params: Model::new(),
            }),
        );
        let run_f = exec.execute(
            &mut sess.pool,
            &problem.program,
            &m,
            Some(&HolePatch {
                theta: ff,
                params: Model::new(),
            }),
        );
        match (run_t.outcome.is_failure(), run_f.outcome.is_failure()) {
            (false, true) => angelics.push(Angelic {
                input: m,
                required: true,
            }),
            (true, false) => angelics.push(Angelic {
                input: m,
                required: false,
            }),
            // Either both pass (no constraint) or both fail (unrepairable
            // at this hole for this test — Angelix would give up; we skip).
            _ => {}
        }
    }
    if angelics.is_empty() {
        return AngelixReport {
            wall_millis: start.elapsed().as_millis() as u64,
            ..no_patch
        };
    }

    // Step 2: synthesis against the angelic forest. Candidates in
    // enumeration order (smallest first); parameters solved so that
    // θ(x_test, A) has the required truth value for every angelic tuple.
    let candidates = enumerate(&mut sess.pool, &problem.components, &problem.synth);
    let mut chosen: Option<TermId> = None;
    for cand in candidates {
        let mut constraints: Vec<TermId> = Vec::new();
        for ang in &angelics {
            let mut map = std::collections::HashMap::new();
            for &v in &sess.input_vars {
                let val = ang.input.int(v).unwrap_or(0);
                let c = sess.pool.int(val);
                map.insert(v, c);
            }
            let inst = sess.pool.substitute(cand.theta, &map);
            constraints.push(if ang.required {
                inst
            } else {
                sess.pool.not(inst)
            });
        }
        match sess.check(&constraints) {
            SatResult::Sat(model) => {
                let mut map = std::collections::HashMap::new();
                for &p in &cand.params {
                    let val = model.int(p).unwrap_or(0);
                    let c = sess.pool.int(val);
                    map.insert(p, c);
                }
                chosen = Some(sess.pool.substitute(cand.theta, &map));
                break;
            }
            _ => continue,
        }
    }

    let (display, correct) = match chosen {
        None => (None, false),
        Some(inst) => {
            let correct = problem
                .developer_patch
                .as_deref()
                .map(|src| {
                    lower_expr_src(&mut sess.pool, src)
                        .map(|dev| equivalent(&mut sess, inst, dev))
                        .unwrap_or(false)
                })
                .unwrap_or(false);
            (Some(sess.pool.display(inst)), correct)
        }
    };
    AngelixReport {
        subject: problem.name.clone(),
        generated: display.is_some(),
        patch: display,
        correct,
        angelic_values: angelics.len(),
        wall_millis: start.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_core::test_input;
    use cpr_lang::{check, parse};
    use cpr_synth::{ComponentSet, SynthConfig};

    #[test]
    fn angelix_overfits_to_few_tests() {
        let program = parse(
            "program p {
               input x in [-10, 10];
               if (__patch_cond__(x)) { return 1; }
               bug div_by_zero requires (x != 0);
               return 100 / x;
             }",
        )
        .unwrap();
        check(&program).unwrap();
        let problem = RepairProblem::new(
            "demo",
            program,
            ComponentSet::new()
                .with_all_comparisons()
                .with_variables(["x"])
                .with_constants(&[0]),
            SynthConfig::default(),
            // One failing test only — exactly the benchmark situation.
            vec![test_input(&[("x", 0)])],
        )
        .with_developer_patch("x == 0");
        let report = angelix(&problem, &RepairConfig::quick());
        assert!(report.generated);
        // With a single test the first satisfying template wins — typically
        // the constant `true` — which is plausible but not correct.
        assert!(!report.correct, "unexpectedly correct: {:?}", report.patch);
    }

    #[test]
    fn angelix_improves_with_more_tests() {
        let program = parse(
            "program p {
               input x in [-10, 10];
               if (__patch_cond__(x)) { return 1; }
               bug div_by_zero requires (x != 0);
               assert(100 / x >= 0 - 100);
               return 100 / x;
             }",
        )
        .unwrap();
        check(&program).unwrap();
        // Passing tests pin the hole to false on x ≠ 0 because forcing true
        // would change the return value? No: the early return also passes.
        // The report merely must stay plausible here.
        let problem = RepairProblem::new(
            "demo",
            program,
            ComponentSet::new()
                .with_all_comparisons()
                .with_variables(["x"])
                .with_constants(&[0]),
            SynthConfig::default(),
            vec![test_input(&[("x", 0)])],
        )
        .with_passing_inputs(vec![test_input(&[("x", 1)]), test_input(&[("x", -1)])]);
        let report = angelix(&problem, &RepairConfig::quick());
        assert!(report.generated);
        assert!(report.angelic_values >= 1);
    }
}
