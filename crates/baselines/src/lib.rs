//! Baseline repair techniques for the CPR evaluation.
//!
//! The paper compares CPR against four tools:
//!
//! * its own custom **CEGIS** implementation (§5, Table 1) — reimplemented
//!   here faithfully: shared concolic engine, shared synthesizer, split
//!   budget, one-candidate-at-a-time counterexample refinement;
//! * **ExtractFix** (Table 2) — reimplemented at the concept level as
//!   crash-free-constraint-driven single-patch synthesis;
//! * **Angelix** (Table 2) — reimplemented as test-driven angelic-value
//!   inference plus synthesis;
//! * **Prophet** (Table 2) — reimplemented as test-validated enumeration
//!   ranked by a fixed prior standing in for the learned model.
//!
//! All four reuse the same substrate crates as CPR so the comparison
//! isolates the *strategy*, exactly as the paper's own CEGIS section argues.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod angelix;
mod cegis;
mod extractfix;
mod prophet;

pub use angelix::{angelix, AngelixReport};
pub use cegis::{cegis, CegisReport};
pub use extractfix::{extractfix, ExtractFixReport};
pub use prophet::{prophet, ProphetReport};
