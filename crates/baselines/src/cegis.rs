//! The paper's custom CEGIS implementation (§5, "Our CEGIS
//! Implementation").
//!
//! CEGIS shares CPR's concolic engine (path exploration) and synthesizer
//! (identical patch space, so `|P_Init|` matches CPR by construction). The
//! technique differs in strategy:
//!
//! 1. an initial exploration phase collects a *set* of symbolic paths
//!    (half the budget),
//! 2. a refinement loop proposes one concrete patch at a time, verifies it
//!    against the collected paths, and on a counterexample discards the
//!    patch and adds the counterexample to the synthesis constraint.
//!
//! CEGIS terminates as soon as one patch survives verification — which, as
//! the paper observes (Finding 2), tends to be a functionality-deleting
//! tautology. Each discarded candidate removes exactly one concrete patch
//! from the pool, which is why the paper's Table 1 shows ~0% reduction for
//! CEGIS.

use std::time::Instant;

use cpr_concolic::{prefix_flips, CandidateInput, HolePatch, InputQueue, SeenPrefixes};
use cpr_core::{
    build_patch_pool, equivalent, lower_expr_src, rank_order, RepairConfig, RepairProblem, Session,
};
use cpr_smt::{Model, SatResult, TermData, TermId};

/// Result of a CEGIS run.
#[derive(Debug, Clone)]
pub struct CegisReport {
    /// Subject name.
    pub subject: String,
    /// `|P_Init|`: concrete patches in the shared initial pool.
    pub p_init: u128,
    /// `|P_Final|`: `|P_Init|` minus the candidates discarded by
    /// counterexamples.
    pub p_final: u128,
    /// `φ_E`: paths collected during the exploration phase.
    pub paths_explored: usize,
    /// Counterexample-refinement iterations.
    pub refinement_iterations: usize,
    /// The patch CEGIS terminated with, rendered (`None` if the space was
    /// exhausted without a surviving patch).
    pub final_patch: Option<String>,
    /// Whether the final patch is a constant guard (tautology or
    /// contradiction) — the functionality-deletion signature.
    pub final_patch_is_constant: bool,
    /// Whether the final patch is semantically equivalent to the developer
    /// patch.
    pub correct: bool,
    /// Wall-clock milliseconds.
    pub wall_millis: u64,
}

impl CegisReport {
    /// Patch-space reduction ratio in percent.
    pub fn reduction_ratio(&self) -> f64 {
        if self.p_init == 0 {
            return 0.0;
        }
        (1.0 - (self.p_final as f64) / (self.p_init as f64)) * 100.0
    }
}

/// Runs CEGIS on `problem`. `config.max_iterations` is split evenly between
/// exploration and refinement, mirroring the paper's 30 min + 30 min split
/// of the 1-hour budget.
pub fn cegis(problem: &RepairProblem, config: &RepairConfig) -> CegisReport {
    let start = Instant::now();
    let mut sess = Session::new(problem, config);

    // Shared synthesizer: identical initial pool to CPR.
    let (entries, synth_stats) = build_patch_pool(&mut sess, problem, config);
    let p_init = synth_stats.concrete;

    // The baseline (buggy) hole expression used to drive exploration.
    let baseline = problem
        .baseline_expr
        .as_deref()
        .and_then(|src| lower_expr_src(&mut sess.pool, src).ok())
        .unwrap_or_else(|| sess.pool.ff());

    // Phase A: plain concolic exploration (no path reduction, no pool).
    let explore_budget = config.max_iterations / 2;
    let mut queue = InputQueue::new();
    for (i, input) in problem
        .failing_inputs
        .iter()
        .chain(problem.passing_inputs.iter())
        .enumerate()
    {
        let model = sess.input_model(input);
        queue.push(CandidateInput {
            model,
            score: 100 - i as i64,
            flipped_index: 0,
        });
    }
    let mut seen_paths = SeenPrefixes::new();
    let mut seen_prefixes = SeenPrefixes::new();
    // Collected symbolic paths that exercised patch and bug locations,
    // stored as runs so they can be re-targeted at candidate patches.
    let mut collected: Vec<cpr_concolic::ConcolicResult> = Vec::new();
    let mut explored = 0usize;
    let hole = HolePatch {
        theta: baseline,
        params: Model::new(),
    };
    for _ in 0..explore_budget {
        let Some(candidate) = queue.pop() else {
            break;
        };
        let input = sess.project_inputs(&candidate.model);
        let exec = sess.exec.clone();
        let run = exec.execute(&mut sess.pool, &problem.program, &input, Some(&hole));
        if seen_paths.insert(&run.constraints()) {
            explored += 1;
            let flips = prefix_flips(&mut sess.pool, &run.path);
            for flip in flips.into_iter().take(config.max_expansion) {
                if !seen_prefixes.insert(&flip.constraints) {
                    continue;
                }
                if let SatResult::Sat(model) = sess.check(&flip.constraints) {
                    queue.push(CandidateInput {
                        model,
                        score: 0,
                        flipped_index: flip.flipped_index,
                    });
                }
            }
            if run.hit_patch && run.spec_observed() {
                collected.push(run);
            }
        }
    }

    // Phase B: counterexample-guided refinement over *concrete* candidates.
    // Candidates are drawn from the shared pool in rank order, enumerating
    // parameter values lazily from each abstract patch's region.
    let mut counterexamples: Vec<Model> = Vec::new();
    let mut discarded: u128 = 0;
    let mut iterations = 0usize;
    let mut final_patch: Option<(TermId, Model)> = None;
    let order = rank_order(&sess.pool, &entries);
    'outer: for &idx in &order {
        let patch = entries[idx].patch.clone();
        // Concrete instantiations: box samples first, then corner points.
        let candidates = concrete_instances(&patch, config.max_iterations);
        for binding in candidates {
            if iterations >= config.max_iterations.max(2) / 2 {
                break 'outer;
            }
            iterations += 1;
            // Synthesis constraint: the candidate must pass every
            // accumulated counterexample input (concrete check).
            let exec = sess.exec.clone();
            let candidate_hole = HolePatch {
                theta: patch.theta,
                params: binding.clone(),
            };
            let mut passes = true;
            for ce in &counterexamples {
                let run = exec.execute(&mut sess.pool, &problem.program, ce, Some(&candidate_hole));
                if run.outcome.is_failure() {
                    passes = false;
                    break;
                }
            }
            // The failing test must be repaired.
            if passes {
                for input in &problem.failing_inputs {
                    let m = sess.input_model(input);
                    let run =
                        exec.execute(&mut sess.pool, &problem.program, &m, Some(&candidate_hole));
                    if run.outcome.is_failure() {
                        passes = false;
                        break;
                    }
                }
            }
            if !passes {
                discarded += 1;
                continue;
            }
            // Verification against the collected symbolic paths: search a
            // counterexample input violating σ under this concrete patch.
            let mut cex: Option<Model> = None;
            for run in &collected {
                let mut phi = run.constraints_for_patch(&mut sess.pool, patch.theta);
                // Fix the parameters to the candidate's concrete values.
                for (v, val) in binding.iter() {
                    let vt = sess.pool.var_term(v);
                    let c = sess.pool.int(val.as_int().unwrap_or(0));
                    phi.push(sess.pool.eq(vt, c));
                }
                if let Some(sigma) = run.spec_term(&mut sess.pool) {
                    let not_sigma = sess.pool.not(sigma);
                    phi.push(not_sigma);
                    if let SatResult::Sat(model) = sess.check(&phi) {
                        cex = Some(sess.project_inputs(&model));
                        break;
                    }
                }
            }
            match cex {
                Some(model) => {
                    counterexamples.push(model);
                    discarded += 1;
                }
                None => {
                    // No counterexample: CEGIS terminates with this patch.
                    final_patch = Some((patch.theta, binding));
                    break 'outer;
                }
            }
        }
    }

    let (display, is_constant, correct) = match &final_patch {
        None => (None, false, false),
        Some((theta, binding)) => {
            let mut map = std::collections::HashMap::new();
            for (v, val) in binding.iter() {
                let c = sess.pool.int(val.as_int().unwrap_or(0));
                map.insert(v, c);
            }
            let inst = sess.pool.substitute(*theta, &map);
            let is_constant = matches!(sess.pool.data(inst), TermData::BoolConst(_));
            let correct = problem
                .developer_patch
                .as_deref()
                .map(|src| {
                    lower_expr_src(&mut sess.pool, src)
                        .map(|dev| equivalent(&mut sess, inst, dev))
                        .unwrap_or(false)
                })
                .unwrap_or(false);
            (Some(sess.pool.display(inst)), is_constant, correct)
        }
    };

    CegisReport {
        subject: problem.name.clone(),
        p_init,
        p_final: p_init.saturating_sub(discarded),
        paths_explored: explored,
        refinement_iterations: iterations,
        final_patch: display,
        final_patch_is_constant: is_constant,
        correct,
        wall_millis: start.elapsed().as_millis() as u64,
    }
}

/// Deterministic concrete instantiations of an abstract patch: the sample
/// point of every region box, then the box corners (deduplicated, capped).
fn concrete_instances(patch: &cpr_synth::AbstractPatch, cap: usize) -> Vec<Model> {
    if patch.is_concrete() {
        return vec![Model::new()];
    }
    let mut out: Vec<Vec<i64>> = Vec::new();
    for b in patch.constraint.boxes() {
        let sample: Vec<i64> = b.sample();
        if !out.contains(&sample) {
            out.push(sample);
        }
        // Corners: lows and highs.
        let lows: Vec<i64> = b.intervals().iter().map(|iv| iv.lo()).collect();
        let highs: Vec<i64> = b.intervals().iter().map(|iv| iv.hi()).collect();
        for corner in [lows, highs] {
            if !out.contains(&corner) {
                out.push(corner);
            }
        }
        if out.len() >= cap {
            break;
        }
    }
    out.truncate(cap);
    out.into_iter()
        .map(|point| {
            let mut m = Model::new();
            for (&p, &v) in patch.params.iter().zip(&point) {
                m.set(p, v);
            }
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_core::test_input;
    use cpr_lang::{check, parse};
    use cpr_synth::{ComponentSet, SynthConfig};

    const DIV_SRC: &str = "program cve_2016_3623 {
        input x in [-10, 10];
        input y in [-10, 10];
        if (__patch_cond__(x, y)) { return 1; }
        bug div_by_zero requires (x * y != 0);
        return 100 / (x * y);
      }";

    fn problem() -> RepairProblem {
        let program = parse(DIV_SRC).unwrap();
        check(&program).unwrap();
        RepairProblem::new(
            "Libtiff/CVE-2016-3623",
            program,
            ComponentSet::new()
                .with_all_comparisons()
                .with_logic()
                .with_variables(["x", "y"])
                .with_constants(&[0]),
            SynthConfig::default(),
            vec![test_input(&[("x", 7), ("y", 0)])],
        )
        .with_developer_patch("x == 0 || y == 0")
        .with_baseline("false")
    }

    #[test]
    fn cegis_terminates_with_an_overfitting_patch() {
        let report = cegis(&problem(), &RepairConfig::quick());
        // CEGIS returns *some* patch…
        let patch = report.final_patch.clone().expect("CEGIS found a patch");
        // …but it is not the developer patch (Finding 2 of the paper):
        assert!(!report.correct, "CEGIS unexpectedly correct: {patch}");
    }

    #[test]
    fn cegis_barely_reduces_the_patch_space() {
        let report = cegis(&problem(), &RepairConfig::quick());
        assert!(report.p_init > 0);
        // Each discarded candidate removes one concrete patch; the ratio
        // stays far below CPR's.
        assert!(
            report.reduction_ratio() < 10.0,
            "ratio {} too high",
            report.reduction_ratio()
        );
    }

    #[test]
    fn cegis_explores_paths() {
        let report = cegis(&problem(), &RepairConfig::quick());
        assert!(report.paths_explored >= 1);
        assert!(report.wall_millis > 0 || report.paths_explored > 0);
    }
}
