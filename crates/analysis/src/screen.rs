//! Patch-space screening: the static analyses applied to solver queries.
//!
//! Two screens, both **under-approximations of solver refutation** — they
//! may only refute what [`cpr_smt::Solver::check`] would itself refute, so
//! substituting their verdict for a solver call can never change a repair
//! outcome (only skip work):
//!
//! * [`statically_unsat`] — interval abstract interpretation of a query at
//!   the root of the solver's search tree. It replays exactly the solver's
//!   own pre-search pass (constant and complementary-literal fast paths,
//!   then a bounded HC4 contraction fixpoint of the abstract post-state
//!   against the specification constraints) without touching the solver's
//!   statistics, cache, or `UnsatPrefixStore`.
//! * [`alpha_equivalent`] — structural equivalence of two terms. The term
//!   language binds no variables, so alpha-equivalence degenerates to
//!   structural equality modulo argument order of the commutative
//!   operators; hash-consing makes identical subtrees pointer-equal, which
//!   keeps the walk cheap. A concrete candidate patch alpha-equivalent to
//!   the buggy expression reproduces the original program behaviour
//!   verbatim, so the failing test still fails and validation is guaranteed
//!   to reject it.

use cpr_smt::{ArithOp, CmpOp, Domains, Solver, TermData, TermId, TermPool};

/// Whether `query` (a conjunction of boolean terms) is refutable purely by
/// the solver's root-level static pass — constant/complementary fast paths
/// plus one bounded interval-contraction fixpoint over `domains`.
///
/// Guarantee: a `true` answer implies `solver.check(pool, query, domains)`
/// returns [`cpr_smt::SatResult::Unsat`]. See
/// [`cpr_smt::Solver::refute_root`] for the construction.
pub fn statically_unsat(
    solver: &Solver,
    pool: &TermPool,
    query: &[TermId],
    domains: &Domains,
) -> bool {
    solver.refute_root(pool, query, domains)
}

/// Whether two terms are alpha-equivalent.
///
/// The term language has no binders, so this is structural equality modulo
/// the argument order of commutative operators (`∧`, `∨`, `=`, `≠`, `+`,
/// `*`). Hash-consing guarantees structurally identical terms share one
/// `TermId`, so the interesting work is only re-ordered operands.
pub fn alpha_equivalent(pool: &TermPool, a: TermId, b: TermId) -> bool {
    if a == b {
        return true;
    }
    match (pool.data(a), pool.data(b)) {
        (TermData::Not(x), TermData::Not(y)) | (TermData::Neg(x), TermData::Neg(y)) => {
            alpha_equivalent(pool, x, y)
        }
        (TermData::And(x1, x2), TermData::And(y1, y2))
        | (TermData::Or(x1, x2), TermData::Or(y1, y2)) => commuted(pool, x1, x2, y1, y2, true),
        (TermData::Cmp(o1, x1, x2), TermData::Cmp(o2, y1, y2)) if o1 == o2 => {
            commuted(pool, x1, x2, y1, y2, matches!(o1, CmpOp::Eq | CmpOp::Ne))
        }
        (TermData::Arith(o1, x1, x2), TermData::Arith(o2, y1, y2)) if o1 == o2 => commuted(
            pool,
            x1,
            x2,
            y1,
            y2,
            matches!(o1, ArithOp::Add | ArithOp::Mul),
        ),
        (TermData::Ite(c1, t1, e1), TermData::Ite(c2, t2, e2)) => {
            alpha_equivalent(pool, c1, c2)
                && alpha_equivalent(pool, t1, t2)
                && alpha_equivalent(pool, e1, e2)
        }
        // Constants and variables are hash-consed: if the ids differ, the
        // terms differ.
        _ => false,
    }
}

fn commuted(
    pool: &TermPool,
    x1: TermId,
    x2: TermId,
    y1: TermId,
    y2: TermId,
    commutative: bool,
) -> bool {
    (alpha_equivalent(pool, x1, y1) && alpha_equivalent(pool, x2, y2))
        || (commutative && alpha_equivalent(pool, x1, y2) && alpha_equivalent(pool, x2, y1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_smt::{SatResult, Sort};

    #[test]
    fn statically_unsat_agrees_with_the_solver() {
        let mut pool = TermPool::new();
        let x = pool.named_var("x", Sort::Int);
        let five = pool.int(5);
        let lt = pool.lt(x, five);
        let gt = pool.gt(x, five);
        let mut domains = Domains::new();
        domains.set(
            pool.find_var("x").unwrap(),
            cpr_smt::Interval::of(-100, 100),
        );
        let mut solver = Solver::new(Default::default());
        assert!(statically_unsat(&solver, &pool, &[lt, gt], &domains));
        assert!(matches!(
            solver.check(&pool, &[lt, gt], &domains),
            SatResult::Unsat
        ));
        assert!(!statically_unsat(&solver, &pool, &[lt], &domains));
    }

    #[test]
    fn alpha_equivalence_handles_commutative_reordering() {
        let mut pool = TermPool::new();
        let x = pool.named_var("x", Sort::Int);
        let y = pool.named_var("y", Sort::Int);
        let one = pool.int(1);

        let xy = pool.add(x, y);
        let yx = pool.add(y, x);
        assert!(alpha_equivalent(&pool, xy, yx));

        // Nested reordering under a commutative comparison.
        let a = pool.eq(xy, one);
        let b = pool.eq(one, yx);
        assert!(alpha_equivalent(&pool, a, b));

        // Non-commutative operators respect order.
        let x_minus_y = pool.sub(x, y);
        let y_minus_x = pool.sub(y, x);
        assert!(!alpha_equivalent(&pool, x_minus_y, y_minus_x));

        // `<` is not commutative either.
        let lt = pool.lt(x, y);
        let tl = pool.lt(y, x);
        assert!(!alpha_equivalent(&pool, lt, tl));

        // Identical terms are pointer-equal under hash-consing.
        let xy2 = pool.add(x, y);
        assert_eq!(xy, xy2);
        assert!(alpha_equivalent(&pool, xy, xy2));
    }

    #[test]
    fn alpha_equivalence_is_not_semantic_equivalence() {
        let mut pool = TermPool::new();
        let x = pool.named_var("x", Sort::Int);
        let one = pool.int(1);
        let two = pool.int(2);
        // x + 1 + 1 vs x + 2: semantically equal, structurally different —
        // the screen must stay an under-approximation and say "different".
        let x1 = pool.add(x, one);
        let x11 = pool.add(x1, one);
        let x2 = pool.add(x, two);
        assert!(!alpha_equivalent(&pool, x11, x2));
    }
}
