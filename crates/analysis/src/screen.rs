//! Patch-space screening: the static analyses applied to solver queries.
//!
//! Two screens, both **under-approximations of solver refutation** — they
//! may only refute what [`cpr_smt::Solver::check`] would itself refute, so
//! substituting their verdict for a solver call can never change a repair
//! outcome (only skip work):
//!
//! * [`statically_unsat`] — interval abstract interpretation of a query at
//!   the root of the solver's search tree. It replays exactly the solver's
//!   own pre-search pass (constant and complementary-literal fast paths,
//!   then a bounded HC4 contraction fixpoint of the abstract post-state
//!   against the specification constraints) without touching the solver's
//!   statistics, cache, or `UnsatPrefixStore`.
//! * [`alpha_equivalent`] — structural equivalence of two terms. The term
//!   language binds no variables, so alpha-equivalence degenerates to
//!   structural equality modulo argument order of the commutative
//!   operators; hash-consing makes identical subtrees pointer-equal, which
//!   keeps the walk cheap. A concrete candidate patch alpha-equivalent to
//!   the buggy expression reproduces the original program behaviour
//!   verbatim, so the failing test still fails and validation is guaranteed
//!   to reject it.

use cpr_smt::{ArithOp, CmpOp, Domains, Solver, TermData, TermId, TermPool};

use crate::certify;

/// Which abstract domain the screening layer runs before delegating a query
/// to the solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScreenDomain {
    /// No screening: every query goes to the solver.
    Off,
    /// Certified interval screen (constant/complementary fast paths plus
    /// the bounded HC4 contraction fixpoint).
    Interval,
    /// Certified interval screen plus the relational zone pass
    /// (difference-constraint negative-cycle detection). Refutes a superset
    /// of [`ScreenDomain::Interval`] by construction.
    #[default]
    Zones,
}

impl ScreenDomain {
    /// Stable lowercase name (CLI value and report label).
    pub fn as_str(self) -> &'static str {
        match self {
            ScreenDomain::Off => "off",
            ScreenDomain::Interval => "interval",
            ScreenDomain::Zones => "zones",
        }
    }
}

impl std::str::FromStr for ScreenDomain {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(ScreenDomain::Off),
            "interval" => Ok(ScreenDomain::Interval),
            "zones" => Ok(ScreenDomain::Zones),
            other => Err(format!(
                "unknown screen domain `{other}` (expected off, interval, or zones)"
            )),
        }
    }
}

impl std::fmt::Display for ScreenDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The certified screen: asks the solver's root-level static pass for a
/// refutation **certificate**, replays it through the independent
/// [`certify`] checker, and only then refutes.
///
/// A rejected replay (checker and inference disagreeing — a screening bug)
/// demotes the query to the solver and bumps `screen.cert_rejected`, so a
/// defective screen costs throughput, never soundness. Successful replays
/// bump `screen.refuted.interval` / `screen.refuted.zones` and time the
/// replay into `screen.cert_replay_nanos`.
///
/// Guarantee (same as [`statically_unsat`]): a `true` answer implies
/// `solver.check(pool, query, domains)` returns [`cpr_smt::SatResult::Unsat`].
pub fn screened_unsat(
    solver: &Solver,
    pool: &TermPool,
    query: &[TermId],
    domains: &Domains,
    domain: ScreenDomain,
) -> bool {
    if domain == ScreenDomain::Off {
        return false;
    }
    let Some(cert) =
        solver.refute_root_certified(pool, query, domains, domain == ScreenDomain::Zones)
    else {
        return false;
    };
    let started = solver.screen_replay_timer();
    let ok = certify::replay(pool, query, domains, solver.config().default_domain, &cert);
    solver.note_screen_replay_done(started);
    if ok {
        solver.note_screen_refuted(cert.uses_zones());
        true
    } else {
        solver.note_screen_cert_rejected();
        false
    }
}

/// Whether `query` (a conjunction of boolean terms) is refutable purely by
/// the solver's root-level static pass — constant/complementary fast paths
/// plus one bounded interval-contraction fixpoint over `domains`.
///
/// Guarantee: a `true` answer implies `solver.check(pool, query, domains)`
/// returns [`cpr_smt::SatResult::Unsat`]. See
/// [`cpr_smt::Solver::refute_root`] for the construction.
pub fn statically_unsat(
    solver: &Solver,
    pool: &TermPool,
    query: &[TermId],
    domains: &Domains,
) -> bool {
    solver.refute_root(pool, query, domains)
}

/// Whether two terms are alpha-equivalent.
///
/// The term language has no binders, so this is structural equality modulo
/// the argument order of commutative operators (`∧`, `∨`, `=`, `≠`, `+`,
/// `*`). Hash-consing guarantees structurally identical terms share one
/// `TermId`, so the interesting work is only re-ordered operands.
pub fn alpha_equivalent(pool: &TermPool, a: TermId, b: TermId) -> bool {
    if a == b {
        return true;
    }
    match (pool.data(a), pool.data(b)) {
        (TermData::Not(x), TermData::Not(y)) | (TermData::Neg(x), TermData::Neg(y)) => {
            alpha_equivalent(pool, x, y)
        }
        (TermData::And(x1, x2), TermData::And(y1, y2))
        | (TermData::Or(x1, x2), TermData::Or(y1, y2)) => commuted(pool, x1, x2, y1, y2, true),
        (TermData::Cmp(o1, x1, x2), TermData::Cmp(o2, y1, y2)) if o1 == o2 => {
            commuted(pool, x1, x2, y1, y2, matches!(o1, CmpOp::Eq | CmpOp::Ne))
        }
        (TermData::Arith(o1, x1, x2), TermData::Arith(o2, y1, y2)) if o1 == o2 => commuted(
            pool,
            x1,
            x2,
            y1,
            y2,
            matches!(o1, ArithOp::Add | ArithOp::Mul),
        ),
        (TermData::Ite(c1, t1, e1), TermData::Ite(c2, t2, e2)) => {
            alpha_equivalent(pool, c1, c2)
                && alpha_equivalent(pool, t1, t2)
                && alpha_equivalent(pool, e1, e2)
        }
        // Constants and variables are hash-consed: if the ids differ, the
        // terms differ.
        _ => false,
    }
}

fn commuted(
    pool: &TermPool,
    x1: TermId,
    x2: TermId,
    y1: TermId,
    y2: TermId,
    commutative: bool,
) -> bool {
    (alpha_equivalent(pool, x1, y1) && alpha_equivalent(pool, x2, y2))
        || (commutative && alpha_equivalent(pool, x1, y2) && alpha_equivalent(pool, x2, y1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_smt::{SatResult, Sort};

    #[test]
    fn statically_unsat_agrees_with_the_solver() {
        let mut pool = TermPool::new();
        let x = pool.named_var("x", Sort::Int);
        let five = pool.int(5);
        let lt = pool.lt(x, five);
        let gt = pool.gt(x, five);
        let mut domains = Domains::new();
        domains.set(
            pool.find_var("x").unwrap(),
            cpr_smt::Interval::of(-100, 100),
        );
        let mut solver = Solver::new(Default::default());
        assert!(statically_unsat(&solver, &pool, &[lt, gt], &domains));
        assert!(matches!(
            solver.check(&pool, &[lt, gt], &domains),
            SatResult::Unsat
        ));
        assert!(!statically_unsat(&solver, &pool, &[lt], &domains));
    }

    #[test]
    fn screened_unsat_domains_form_a_hierarchy() {
        let mut pool = TermPool::new();
        let x = pool.named_var("x", Sort::Int);
        let y = pool.named_var("y", Sort::Int);
        let z = pool.named_var("z", Sort::Int);
        let five = pool.int(5);
        let mut domains = Domains::new();
        for name in ["x", "y", "z"] {
            domains.set(pool.find_var(name).unwrap(), cpr_smt::Interval::of(-50, 50));
        }
        let solver = Solver::new(Default::default());

        // Interval-refutable: x < 5 ∧ x > 5.
        let iv_query = [pool.lt(x, five), pool.gt(x, five)];
        // Relational-only: x ≤ y ∧ y ≤ z ∧ x > z (every projection stays
        // full-range; only the difference constraints close a cycle).
        let zone_query = [pool.le(x, y), pool.le(y, z), pool.gt(x, z)];

        assert!(!screened_unsat(
            &solver,
            &pool,
            &iv_query,
            &domains,
            ScreenDomain::Off
        ));
        assert!(screened_unsat(
            &solver,
            &pool,
            &iv_query,
            &domains,
            ScreenDomain::Interval
        ));
        assert!(screened_unsat(
            &solver,
            &pool,
            &iv_query,
            &domains,
            ScreenDomain::Zones
        ));

        assert!(!screened_unsat(
            &solver,
            &pool,
            &zone_query,
            &domains,
            ScreenDomain::Interval
        ));
        assert!(screened_unsat(
            &solver,
            &pool,
            &zone_query,
            &domains,
            ScreenDomain::Zones
        ));
        // And the screen's verdict must agree with the real solver.
        let mut solver = solver;
        assert!(matches!(
            solver.check(&pool, &zone_query, &domains),
            SatResult::Unsat
        ));
    }

    #[test]
    fn alpha_equivalence_handles_commutative_reordering() {
        let mut pool = TermPool::new();
        let x = pool.named_var("x", Sort::Int);
        let y = pool.named_var("y", Sort::Int);
        let one = pool.int(1);

        let xy = pool.add(x, y);
        let yx = pool.add(y, x);
        assert!(alpha_equivalent(&pool, xy, yx));

        // Nested reordering under a commutative comparison.
        let a = pool.eq(xy, one);
        let b = pool.eq(one, yx);
        assert!(alpha_equivalent(&pool, a, b));

        // Non-commutative operators respect order.
        let x_minus_y = pool.sub(x, y);
        let y_minus_x = pool.sub(y, x);
        assert!(!alpha_equivalent(&pool, x_minus_y, y_minus_x));

        // `<` is not commutative either.
        let lt = pool.lt(x, y);
        let tl = pool.lt(y, x);
        assert!(!alpha_equivalent(&pool, lt, tl));

        // Identical terms are pointer-equal under hash-consing.
        let xy2 = pool.add(x, y);
        assert_eq!(xy, xy2);
        assert!(alpha_equivalent(&pool, xy, xy2));
    }

    #[test]
    fn alpha_equivalence_is_not_semantic_equivalence() {
        let mut pool = TermPool::new();
        let x = pool.named_var("x", Sort::Int);
        let one = pool.int(1);
        let two = pool.int(2);
        // x + 1 + 1 vs x + 2: semantically equal, structurally different —
        // the screen must stay an under-approximation and say "different".
        let x1 = pool.add(x, one);
        let x11 = pool.add(x1, one);
        let x2 = pool.add(x, two);
        assert!(!alpha_equivalent(&pool, x11, x2));
    }
}
