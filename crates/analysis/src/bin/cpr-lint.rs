//! `cpr-lint` — static diagnostics for `.cpr` subject programs.
//!
//! Usage: `cpr-lint <file.cpr>...`
//!
//! Prints one JSON object per diagnostic on stdout:
//!
//! ```json
//! {"file":"programs/x.cpr","line":3,"col":5,"code":"dead-variable","message":"..."}
//! ```
//!
//! Exit status: 0 when every file lints clean, 1 when any diagnostic was
//! reported, 2 on usage or I/O errors. A per-run summary goes to stderr so
//! stdout stays purely machine-readable.

use std::process::ExitCode;

use cpr_analysis::lint::lint_source;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: cpr-lint <file.cpr>...");
        return ExitCode::from(2);
    }
    let mut total = 0usize;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cpr-lint: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        for diag in lint_source(&src) {
            println!("{}", diag.to_json(file, &src));
            total += 1;
        }
    }
    eprintln!("cpr-lint: {total} diagnostic(s) in {} file(s)", files.len());
    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
