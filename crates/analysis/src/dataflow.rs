//! Def-use chains and backward liveness over a [`Cfg`], plus the
//! dead-variable query used by `cpr-lint`.
//!
//! Liveness is the textbook backward may-analysis:
//!
//! ```text
//! live_out(n) = ⋃ live_in(s)  for s ∈ succs(n)
//! live_in(n)  = uses(n) ∪ (live_out(n) ∖ defs(n))
//! ```
//!
//! iterated to a fixpoint. Array-element writes are weak updates (the array
//! appears in both `defs` and `uses`), so an array is never killed by a
//! partial write — the sound direction for a may-analysis.

use std::collections::BTreeSet;

use cpr_lang::{Program, Span, Stmt};

use crate::cfg::Cfg;

/// Per-node live-variable sets, indexed by [`crate::cfg::NodeId`].
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Variables live on entry to each node.
    pub live_in: Vec<BTreeSet<String>>,
    /// Variables live on exit from each node.
    pub live_out: Vec<BTreeSet<String>>,
}

/// Computes backward liveness over `cfg` to a fixpoint.
pub fn liveness(cfg: &Cfg) -> Liveness {
    let n = cfg.nodes().len();
    let mut live_in: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut live_out: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        // Reverse order converges quickly on mostly-forward CFGs.
        for id in (0..n).rev() {
            let node = &cfg.nodes()[id];
            let mut out = BTreeSet::new();
            for &s in &node.succs {
                out.extend(live_in[s].iter().cloned());
            }
            let mut inn: BTreeSet<String> = node.uses.iter().cloned().collect();
            for v in &out {
                if !node.defs.contains(v) {
                    inn.insert(v.clone());
                }
            }
            if out != live_out[id] || inn != live_in[id] {
                live_out[id] = out;
                live_in[id] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Declared-but-never-read variables of the main body, in declaration order.
///
/// A variable counts as *read* if its name occurs in any use position
/// anywhere in the program body — conditions, indices, hole argument lists,
/// and array reads included. Writing to a variable does not keep it alive.
/// This is deliberately coarser than per-node liveness (which would also
/// flag dead *stores* to otherwise-used variables) so that the lint never
/// fires on the common declare-then-branch-assign idiom.
pub fn dead_variables(program: &Program) -> Vec<(String, Span)> {
    let mut declared: Vec<(String, Span)> = Vec::new();
    collect_decls(&program.body, &mut declared);
    let cfg = Cfg::build(program);
    let used: BTreeSet<&String> = cfg.nodes().iter().flat_map(|n| n.uses.iter()).collect();
    declared.retain(|(name, _)| !used.contains(name));
    declared
}

fn collect_decls(stmts: &[Stmt], out: &mut Vec<(String, Span)>) {
    for stmt in stmts {
        match stmt {
            Stmt::Decl { name, span, .. } => out.push((name.clone(), *span)),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_decls(then_body, out);
                collect_decls(else_body, out);
            }
            Stmt::While { body, .. } => collect_decls(body, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_lang::{check, parse};

    fn program(src: &str) -> Program {
        let p = parse(src).unwrap();
        check(&p).unwrap();
        p
    }

    #[test]
    fn liveness_flows_backward_through_branches_and_loops() {
        let p = program(
            "program p {
               input x in [0, 8];
               var s: int = 0;
               var i: int = 0;
               while (i < x) { s = s + i; i = i + 1; }
               return s;
             }",
        );
        let cfg = Cfg::build(&p);
        let live = liveness(&cfg);
        // At the loop head, everything the loop and the return read is live.
        let head = cfg
            .nodes()
            .iter()
            .position(|n| n.kind == crate::cfg::NodeKind::LoopHead)
            .unwrap();
        for v in ["x", "s", "i"] {
            assert!(live.live_in[head].contains(v), "{v} should be live");
        }
        // Nothing is live once the program has exited.
        assert!(live.live_out[cfg.exit()].is_empty());
    }

    #[test]
    fn defs_kill_liveness_above_them() {
        let p = program("program p { input x in [0, 4]; var y: int = x; return y; }");
        let cfg = Cfg::build(&p);
        let live = liveness(&cfg);
        let decl = cfg
            .nodes()
            .iter()
            .position(|n| n.defs.contains(&"y".to_owned()))
            .unwrap();
        assert!(live.live_out[decl].contains("y"));
        assert!(!live.live_in[decl].contains("y"));
        assert!(live.live_in[decl].contains("x"));
    }

    #[test]
    fn array_element_writes_are_weak_updates() {
        // `a[i] = x` must keep `a` alive ABOVE the write: the untouched
        // elements still flow into the later read, so the write cannot kill
        // the array. This pins the defs∪uses contract the zone domain's
        // element-summary treatment relies on.
        let p = program(
            "program p {
               input x in [0, 4];
               input i in [0, 3];
               var a: int[4];
               a[i] = x;
               return a[0];
             }",
        );
        let cfg = Cfg::build(&p);
        let write = cfg
            .nodes()
            .iter()
            .position(|n| n.kind == crate::cfg::NodeKind::AssignIndex)
            .unwrap();
        let node = &cfg.nodes()[write];
        assert!(node.defs.contains(&"a".to_owned()));
        assert!(node.uses.contains(&"a".to_owned()));
        let live = liveness(&cfg);
        // Weak update: `a` stays live through and above the write.
        assert!(live.live_out[write].contains("a"));
        assert!(live.live_in[write].contains("a"));
        // The index and the stored value are ordinary uses.
        assert!(live.live_in[write].contains("i"));
        assert!(live.live_in[write].contains("x"));
    }

    #[test]
    fn scalar_assignments_still_kill_but_array_writes_do_not() {
        // Contrast case: a full scalar def kills liveness above it, while
        // the weak array update in the same program does not.
        let p = program(
            "program p {
               input x in [0, 4];
               var s: int = 0;
               var a: int[2];
               a[0] = s;
               s = x;
               a[1] = s;
               return a[0] + a[1] + s;
             }",
        );
        let cfg = Cfg::build(&p);
        let live = liveness(&cfg);
        let kill = cfg
            .nodes()
            .iter()
            .position(|n| {
                n.kind == crate::cfg::NodeKind::Assign && n.defs.contains(&"s".to_owned())
            })
            .unwrap();
        // The scalar redefinition kills `s` above it…
        assert!(!live.live_in[kill].contains("s"));
        assert!(live.live_out[kill].contains("s"));
        // …while both weak array writes keep `a` live above themselves.
        for (id, n) in cfg.nodes().iter().enumerate() {
            if n.kind == crate::cfg::NodeKind::AssignIndex {
                assert!(live.live_in[id].contains("a"), "weak update killed `a`");
            }
        }
    }

    #[test]
    fn dead_variables_are_declared_but_never_read() {
        let p = program(
            "program p {
               input x in [0, 4];
               var unused: int = 7;
               var written: int = 0;
               written = x;
               var read: int = 1;
               return x + read;
             }",
        );
        let dead = dead_variables(&p);
        let names: Vec<&str> = dead.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["unused", "written"]);
    }

    #[test]
    fn hole_arguments_count_as_reads() {
        let p = program(
            "program p {
               input x in [0, 4];
               var y: int = 2;
               if (__patch_cond__(x, y)) { return 0; }
               return x;
             }",
        );
        assert!(dead_variables(&p).is_empty());
    }
}
