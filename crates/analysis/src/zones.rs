//! Relational abstract interpretation of subject programs over the zone
//! (difference-bound) domain.
//!
//! Where [`crate::absint`] tracks one interval per scalar, this pass tracks
//! *differences*: bounds of the form `x - y <= c` and `±x <= c`, stored in a
//! difference-bound matrix (DBM) with a virtual zero variable `Z`. That is
//! exactly the relational strength needed for the screening layer's subject
//! programs — loop counters bounded by symbolic lengths (`i - len <= -1`),
//! offset chains (`x = y + 3`), and array-index safety against a symbolic
//! length variable `len$a` introduced for every array declaration.
//!
//! The interpreter mirrors [`crate::absint`]'s AST-directed structure: branch
//! refinement constrains the DBM on both arms, loops run a few exact rounds,
//! widen unstable bounds to +∞, and — once stable — run a bounded *narrowing*
//! pass that pulls widened bounds back down to the last computed
//! post-state. Per-loop-head precision statistics ([`LoopHeadStats`]) are
//! reported so the repair session can export `screen.widen_rounds` /
//! `screen.narrow_rounds` metrics.
//!
//! Two value-safety site checks ride on the interpretation and feed the
//! `cpr-lint` diagnostics `possible-division-by-zero` and
//! `possible-index-out-of-bounds`:
//!
//! * every `/` and `%` site is safe when the divisor's zone projection
//!   excludes zero *or* the divisor expression carries a nonzero
//!   *fingerprint* — a structural fact recorded when the path was refined
//!   under `e != 0` (an `assume`, a guard, or a `bug … requires` fallthrough)
//!   and killed when any variable the expression reads is reassigned;
//! * every `a[e]` read or write is safe when `0 <= e` and `e <= len - 1`
//!   hold, checked relationally (`e - len$a <= -1` closes through the DBM)
//!   with the interval projection as fallback.
//!
//! Everything here **over-approximates** reachability, so "no unsafe site"
//! is a proof and "possible" diagnostics may be false positives — the right
//! polarity for authoring-time lints.

use std::collections::{BTreeMap, BTreeSet};

use cpr_lang::{BinOp, Builtin, Expr, Program, Span, Stmt, Type, UnOp};
use cpr_smt::interval::Interval;

use crate::absint::AbsBool;
use crate::cfg::expr_uses;

/// Sentinel for "no upper bound" in the DBM.
const INF: i64 = i64::MAX;

/// Clamps an `i128` sum into the finite DBM range. Raising a bound (either
/// clamp direction moves toward looser) is always sound.
fn clamp128(v: i128) -> i64 {
    v.clamp((i64::MIN + 2) as i128, (INF - 1) as i128) as i64
}

/// Saturating bound addition: `INF` absorbs.
fn badd(a: i64, b: i64) -> i64 {
    if a == INF || b == INF {
        INF
    } else {
        clamp128(a as i128 + b as i128)
    }
}

/// Element summary and static length of one array variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayVal {
    /// Declared length (from `int[n]`).
    pub len: i64,
    /// One interval over-approximating every element.
    pub summary: Interval,
}

/// A zone abstract state: a DBM over the program's integer scalars (plus one
/// synthetic `len$a` variable per array), three-valued booleans, array
/// element summaries, and the set of nonzero expression fingerprints.
///
/// Infeasible states are represented as `None` at the interpreter level, so
/// a `Zone` value is always non-empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    /// Scalar name → 1-based DBM index (0 is the virtual zero `Z`).
    slots: BTreeMap<String, usize>,
    /// `(n+1)²` row-major bounds: `dbm[i*(n+1)+j]` bounds `v_i - v_j`.
    dbm: Vec<i64>,
    bools: BTreeMap<String, AbsBool>,
    arrays: BTreeMap<String, ArrayVal>,
    /// Fingerprint → variables it reads (for kill-on-assign).
    nonzero: BTreeMap<String, BTreeSet<String>>,
}

/// The synthetic length variable tracked for array `name`.
fn len_name(name: &str) -> String {
    format!("len${name}")
}

impl Zone {
    fn top(universe: &[String]) -> Zone {
        let slots: BTreeMap<String, usize> = universe
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i + 1))
            .collect();
        let d = slots.len() + 1;
        let mut dbm = vec![INF; d * d];
        for i in 0..d {
            dbm[i * d + i] = 0;
        }
        Zone {
            slots,
            dbm,
            bools: BTreeMap::new(),
            arrays: BTreeMap::new(),
            nonzero: BTreeMap::new(),
        }
    }

    fn dim(&self) -> usize {
        self.slots.len() + 1
    }

    fn slot(&self, name: &str) -> Option<usize> {
        self.slots.get(name).copied()
    }

    /// Tightens `v_i - v_j <= c`.
    fn set_ub(&mut self, i: usize, j: usize, c: i64) {
        let d = self.dim();
        let e = &mut self.dbm[i * d + j];
        if c < *e {
            *e = c;
        }
    }

    /// Floyd–Warshall shortest-path closure. Returns `false` when a negative
    /// cycle proves the zone empty.
    fn close(&mut self) -> bool {
        let d = self.dim();
        for k in 0..d {
            for i in 0..d {
                let ik = self.dbm[i * d + k];
                if ik == INF {
                    continue;
                }
                for j in 0..d {
                    let v = badd(ik, self.dbm[k * d + j]);
                    if v < self.dbm[i * d + j] {
                        self.dbm[i * d + j] = v;
                    }
                }
            }
        }
        (0..d).all(|i| self.dbm[i * d + i] >= 0)
    }

    /// Drops every constraint mentioning slot `i` (callers close first so
    /// relations among the *other* variables survive through `i`).
    fn forget(&mut self, i: usize) {
        let d = self.dim();
        for t in 0..d {
            if t != i {
                self.dbm[i * d + t] = INF;
                self.dbm[t * d + i] = INF;
            }
        }
    }

    /// Exact transfer for `x := x + k`: every bound on `x - t` shifts by
    /// `+k` and every bound on `t - x` by `-k`.
    fn shift(&mut self, i: usize, k: i64) {
        let d = self.dim();
        for t in 0..d {
            if t != i {
                self.dbm[i * d + t] = badd(self.dbm[i * d + t], k);
                self.dbm[t * d + i] = badd(self.dbm[t * d + i], -k);
            }
        }
    }

    /// The interval projection of scalar `name` (TOP when untracked).
    pub fn project(&self, name: &str) -> Interval {
        let Some(i) = self.slot(name) else {
            return Interval::TOP;
        };
        let d = self.dim();
        let hi_raw = self.dbm[i * d];
        let lo_raw = self.dbm[i];
        let hi = if hi_raw == INF {
            Interval::MAX_BOUND
        } else {
            hi_raw.clamp(Interval::MIN_BOUND, Interval::MAX_BOUND)
        };
        let lo = if lo_raw == INF {
            Interval::MIN_BOUND
        } else {
            (-lo_raw).clamp(Interval::MIN_BOUND, Interval::MAX_BOUND)
        };
        Interval::of(lo.min(hi), hi)
    }

    /// The tracked upper bound on `a - b`, when finite. `None` means the
    /// zone knows no (finite) bound between the two.
    pub fn diff_upper(&self, a: &str, b: &str) -> Option<i64> {
        let (i, j) = (self.slot(a)?, self.slot(b)?);
        let d = self.dim();
        let c = self.dbm[i * d + j];
        (c != INF).then_some(c)
    }

    /// Pointwise least upper bound (exact union hull on closed operands).
    fn join(&self, other: &Zone) -> Zone {
        debug_assert_eq!(self.slots, other.slots);
        let mut out = self.clone();
        for (e, o) in out.dbm.iter_mut().zip(&other.dbm) {
            *e = (*e).max(*o);
        }
        for (k, v) in &other.bools {
            let merged = match out.bools.get(k) {
                Some(cur) => cur.join(*v),
                None => *v,
            };
            out.bools.insert(k.clone(), merged);
        }
        for (k, v) in &other.arrays {
            let merged = match out.arrays.get(k) {
                Some(cur) => ArrayVal {
                    len: cur.len,
                    summary: cur.summary.hull(v.summary),
                },
                None => *v,
            };
            out.arrays.insert(k.clone(), merged);
        }
        // A nonzero fact survives a join only when both paths establish it.
        out.nonzero.retain(|k, _| other.nonzero.contains_key(k));
        out
    }

    /// Standard DBM widening: bounds still growing jump to +∞.
    fn widen(&self, next: &Zone) -> Zone {
        debug_assert_eq!(self.slots, next.slots);
        let mut out = self.clone();
        for (e, n) in out.dbm.iter_mut().zip(&next.dbm) {
            if *n > *e {
                *e = INF;
            }
        }
        for (k, v) in &next.bools {
            let merged = match out.bools.get(k) {
                Some(cur) => cur.join(*v),
                None => *v,
            };
            out.bools.insert(k.clone(), merged);
        }
        for (k, v) in &next.arrays {
            let merged = match out.arrays.get(k) {
                Some(cur) => ArrayVal {
                    len: cur.len,
                    summary: crate::absint::widen_interval(cur.summary, v.summary),
                },
                None => *v,
            };
            out.arrays.insert(k.clone(), merged);
        }
        out.nonzero.retain(|k, _| next.nonzero.contains_key(k));
        out
    }

    /// Standard DBM narrowing: only bounds the widening blew to +∞ are
    /// pulled back down to `next`'s (still sound) value.
    fn narrow(&self, next: &Zone) -> Zone {
        debug_assert_eq!(self.slots, next.slots);
        let mut out = self.clone();
        for (e, n) in out.dbm.iter_mut().zip(&next.dbm) {
            if *e == INF {
                *e = *n;
            }
        }
        for (k, v) in out.arrays.iter_mut() {
            if let Some(n) = next.arrays.get(k) {
                v.summary = crate::absint::narrow_interval(v.summary, n.summary);
            }
        }
        out
    }
}

fn join_opt(a: Option<Zone>, b: Option<Zone>) -> Option<Zone> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.join(&b)),
        (Some(a), None) => Some(a),
        (None, b) => b,
    }
}

/// Precision statistics for one loop head (keyed by the condition's span).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopHeadStats {
    /// Total analysis rounds spent at this head.
    pub rounds: u64,
    /// Rounds where at least one bound was widened to +∞.
    pub widen_rounds: u64,
    /// Narrowing rounds that recovered at least one finite bound.
    pub narrow_rounds: u64,
}

/// Result of zone-interpreting a program.
#[derive(Debug, Clone)]
pub struct ZoneSummary {
    /// Division/remainder sites whose divisor may be zero.
    pub possible_div_zero: Vec<Span>,
    /// Index sites (reads and writes) that may fall outside `[0, len)`,
    /// with the array's name and declared length.
    pub possible_oob: Vec<(Span, String, i64)>,
    /// Total distinct division/remainder sites checked.
    pub div_sites: usize,
    /// Total distinct index sites checked.
    pub index_sites: usize,
    /// Per-loop-head widen/narrow statistics, keyed by condition span.
    pub loop_heads: BTreeMap<(usize, usize), LoopHeadStats>,
    /// Zone joined over every path reaching the bug location.
    pub bug_zone: Option<Zone>,
    /// Zone joined over every `return` site (post any `bug` refinement).
    pub return_zone: Option<Zone>,
}

const MAX_LOOP_ROUNDS: usize = 16;
const WIDEN_AFTER: usize = 3;
const NARROW_ROUNDS: usize = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    Div,
    Index,
}

struct Site {
    kind: SiteKind,
    safe: bool,
    name: String,
    len: i64,
}

struct ZoneInterp {
    sites: BTreeMap<(usize, usize), Site>,
    loop_heads: BTreeMap<(usize, usize), LoopHeadStats>,
    bug_zone: Option<Zone>,
    return_zone: Option<Zone>,
}

/// Zone-interprets `program` from its declared input ranges.
pub fn analyze_zones(program: &Program) -> ZoneSummary {
    let mut universe: Vec<String> = Vec::new();
    for input in &program.inputs {
        universe.push(input.name.clone());
    }
    collect_universe(&program.body, &mut universe);

    let mut zone = Zone::top(&universe);
    for input in &program.inputs {
        if let Some(i) = zone.slot(&input.name) {
            zone.set_ub(i, 0, input.hi);
            zone.set_ub(0, i, -input.lo);
        }
    }
    let feasible = zone.close();

    let mut interp = ZoneInterp {
        sites: BTreeMap::new(),
        loop_heads: BTreeMap::new(),
        bug_zone: None,
        return_zone: None,
    };
    interp.exec_block(&program.body, feasible.then_some(zone));

    let mut possible_div_zero = Vec::new();
    let mut possible_oob = Vec::new();
    let mut div_sites = 0;
    let mut index_sites = 0;
    for (&(start, end), site) in &interp.sites {
        match site.kind {
            SiteKind::Div => {
                div_sites += 1;
                if !site.safe {
                    possible_div_zero.push(Span::new(start, end));
                }
            }
            SiteKind::Index => {
                index_sites += 1;
                if !site.safe {
                    possible_oob.push((Span::new(start, end), site.name.clone(), site.len));
                }
            }
        }
    }
    ZoneSummary {
        possible_div_zero,
        possible_oob,
        div_sites,
        index_sites,
        loop_heads: interp.loop_heads,
        bug_zone: interp.bug_zone,
        return_zone: interp.return_zone,
    }
}

/// Pre-scans every integer scalar (and one `len$a` per array) so all states
/// share one DBM universe.
fn collect_universe(stmts: &[Stmt], out: &mut Vec<String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Decl { name, ty, .. } => match ty {
                Type::Int => out.push(name.clone()),
                Type::IntArray(_) => out.push(len_name(name)),
                Type::Bool => {}
            },
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_universe(then_body, out);
                collect_universe(else_body, out);
            }
            Stmt::While { body, .. } => collect_universe(body, out),
            _ => {}
        }
    }
}

/// Structural fingerprint of an expression (spans ignored); `None` when the
/// expression contains a patch hole (holes are candidate-dependent, so no
/// fact about them is stable).
fn fingerprint(e: &Expr) -> Option<String> {
    if e.contains_hole() {
        return None;
    }
    let mut out = String::new();
    render(e, &mut out);
    Some(out)
}

fn render(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(v, _) => out.push_str(&v.to_string()),
        Expr::Bool(b, _) => out.push_str(if *b { "true" } else { "false" }),
        Expr::Var(name, _) => out.push_str(name),
        Expr::Index(name, idx, _) => {
            out.push_str("(idx ");
            out.push_str(name);
            out.push(' ');
            render(idx, out);
            out.push(')');
        }
        Expr::Unary(op, inner, _) => {
            out.push_str(match op {
                UnOp::Neg => "(neg ",
                UnOp::Not => "(not ",
            });
            render(inner, out);
            out.push(')');
        }
        Expr::Binary(op, a, b, _) => {
            out.push('(');
            out.push_str(&format!("{op:?} "));
            render(a, out);
            out.push(' ');
            render(b, out);
            out.push(')');
        }
        Expr::Call(builtin, args, _) => {
            out.push_str(&format!("(call {builtin:?}"));
            for a in args {
                out.push(' ');
                render(a, out);
            }
            out.push(')');
        }
        Expr::UserCall(name, args, _) => {
            out.push_str("(ucall ");
            out.push_str(name);
            for a in args {
                out.push(' ');
                render(a, out);
            }
            out.push(')');
        }
        // Unreachable: `fingerprint` bails on holes before rendering.
        Expr::Hole(..) => out.push_str("(hole)"),
    }
}

/// A linear view of an expression: `value = var + k` (or just `k`).
type LinE = (Option<usize>, i64);

impl ZoneInterp {
    fn note_site(&mut self, span: Span, kind: SiteKind, name: &str, len: i64, safe: bool) {
        let key = (span.start, span.end);
        match self.sites.get_mut(&key) {
            // A site is safe only when every visit proves it safe.
            Some(site) => site.safe &= safe,
            None => {
                self.sites.insert(
                    key,
                    Site {
                        kind,
                        safe,
                        name: name.to_owned(),
                        len,
                    },
                );
            }
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], mut state: Option<Zone>) -> Option<Zone> {
        for stmt in stmts {
            let s = state?;
            state = self.exec_stmt(stmt, s);
        }
        state
    }

    fn exec_stmt(&mut self, stmt: &Stmt, mut state: Zone) -> Option<Zone> {
        match stmt {
            Stmt::Decl { name, ty, init, .. } => match ty {
                Type::IntArray(n) => {
                    state.arrays.insert(
                        name.clone(),
                        ArrayVal {
                            len: *n as i64,
                            summary: Interval::point(0),
                        },
                    );
                    if let Some(i) = state.slot(&len_name(name)) {
                        state.set_ub(i, 0, *n as i64);
                        state.set_ub(0, i, -(*n as i64));
                        if !state.close() {
                            return None;
                        }
                    }
                    Some(state)
                }
                Type::Bool => {
                    let v = match init {
                        Some(e) => self.eval_bool(&state, e),
                        None => AbsBool::False,
                    };
                    state.bools.insert(name.clone(), v);
                    Some(state)
                }
                Type::Int => match init {
                    Some(e) => self.assign_int(state, name, e),
                    None => {
                        let zero = Expr::Int(0, Span::default());
                        self.assign_int(state, name, &zero)
                    }
                },
            },
            Stmt::Assign { name, value, .. } => {
                if state.slot(name).is_some() {
                    self.assign_int(state, name, value)
                } else {
                    let v = self.eval_bool(&state, value);
                    kill_fingerprints(&mut state, name);
                    state.bools.insert(name.clone(), v);
                    Some(state)
                }
            }
            Stmt::AssignIndex {
                name,
                index,
                value,
                span,
            } => {
                let _ = self.eval(&state, index);
                let v = match self.eval(&state, value) {
                    crate::absint::AbsVal::Int(i) => i,
                    _ => Interval::TOP,
                };
                self.check_index(&state, name, index, *span);
                kill_fingerprints(&mut state, name);
                if let Some(arr) = state.arrays.get_mut(name) {
                    arr.summary = arr.summary.hull(v);
                }
                Some(state)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let verdict = self.eval_bool(&state, cond);
                let then_in = if verdict == AbsBool::False {
                    None
                } else {
                    self.refine(state.clone(), cond, true)
                };
                let else_in = if verdict == AbsBool::True {
                    None
                } else {
                    self.refine(state.clone(), cond, false)
                };
                let then_out = then_in.and_then(|s| self.exec_block(then_body, Some(s)));
                let else_out = else_in.and_then(|s| self.exec_block(else_body, Some(s)));
                join_opt(then_out, else_out)
            }
            Stmt::While { cond, body, .. } => self.exec_while(cond, body, state),
            Stmt::Return { value, .. } => {
                let _ = self.eval(&state, value);
                self.return_zone = join_opt(self.return_zone.take(), Some(state));
                None
            }
            Stmt::Assert { cond, .. } | Stmt::Assume { cond, .. } => {
                let _ = self.eval_bool(&state, cond);
                self.refine(state, cond, true)
            }
            Stmt::Bug { spec, .. } => {
                let _ = self.eval_bool(&state, spec);
                self.bug_zone = join_opt(self.bug_zone.take(), Some(state.clone()));
                // Violating the spec stops the program; fallthrough holds σ.
                self.refine(state, spec, true)
            }
        }
    }

    fn exec_while(&mut self, cond: &Expr, body: &[Stmt], state: Zone) -> Option<Zone> {
        let key = (cond.span().start, cond.span().end);
        self.loop_heads.entry(key).or_default();
        let entry = state.clone();
        let mut cur = state;
        let mut exits: Option<Zone> = None;
        let mut converged = false;
        for round in 0..MAX_LOOP_ROUNDS {
            self.loop_heads.get_mut(&key).unwrap().rounds += 1;
            let verdict = self.eval_bool(&cur, cond);
            exits = join_opt(exits, self.refine(cur.clone(), cond, false));
            if verdict == AbsBool::False {
                return exits;
            }
            let body_in = match self.refine(cur.clone(), cond, true) {
                Some(s) => s,
                None => return exits,
            };
            let body_out = match self.exec_block(body, Some(body_in)) {
                Some(s) => s,
                // Every iteration path returns/stops: no fallthrough.
                None => return exits,
            };
            let next = cur.join(&body_out);
            if next == cur {
                converged = true;
                break;
            }
            cur = if round >= WIDEN_AFTER {
                self.loop_heads.get_mut(&key).unwrap().widen_rounds += 1;
                // Deliberately left unclosed: closure would re-derive the
                // widened bounds from stable relations and mask what the
                // narrowing pass exists to recover. Refinement closes every
                // state that actually flows into the body.
                cur.widen(&next)
            } else {
                next
            };
        }
        if !converged {
            // Round budget exhausted without a proven invariant: the
            // accumulated exit join is the only sound answer.
            return join_opt(exits, self.refine(cur, cond, false));
        }
        // `cur` is an invariant; bounded narrowing pulls widened bounds back
        // toward the last post-state, which stays an invariant because only
        // +∞ entries move and they only move to values `F(cur) ⊔ entry`
        // itself justified.
        for _ in 0..NARROW_ROUNDS {
            let body_in = match self.refine(cur.clone(), cond, true) {
                Some(s) => s,
                None => break,
            };
            let body_out = match self.exec_block(body, Some(body_in)) {
                Some(s) => s,
                None => break,
            };
            let next = entry.join(&body_out);
            let mut narrowed = cur.narrow(&next);
            if !narrowed.close() || narrowed == cur {
                break;
            }
            self.loop_heads.get_mut(&key).unwrap().narrow_rounds += 1;
            cur = narrowed;
        }
        // The invariant subsumes every reachable head state, so its false
        // refinement replaces the round-by-round exit join.
        self.refine(cur, cond, false)
    }

    fn assign_int(&mut self, mut state: Zone, name: &str, value: &Expr) -> Option<Zone> {
        let v = self.eval(&state, value);
        let lin = lin_of(&state, value);
        kill_fingerprints(&mut state, name);
        let Some(s) = state.slot(name) else {
            return Some(state);
        };
        match lin {
            Some((Some(j), k)) if j == s => state.shift(s, k),
            Some((Some(j), k)) => {
                if !state.close() {
                    return None;
                }
                state.forget(s);
                state.set_ub(s, j, k);
                state.set_ub(j, s, -k);
                if !state.close() {
                    return None;
                }
            }
            Some((None, k)) => {
                if !state.close() {
                    return None;
                }
                state.forget(s);
                state.set_ub(s, 0, k);
                state.set_ub(0, s, -k);
            }
            None => {
                if !state.close() {
                    return None;
                }
                state.forget(s);
                let iv = crate::absint::as_interval(v);
                if iv.hi() < Interval::MAX_BOUND {
                    state.set_ub(s, 0, iv.hi());
                }
                if iv.lo() > Interval::MIN_BOUND {
                    state.set_ub(0, s, -iv.lo());
                }
            }
        }
        Some(state)
    }

    /// Evaluates an expression, recording division/index site verdicts.
    fn eval(&mut self, z: &Zone, e: &Expr) -> crate::absint::AbsVal {
        use crate::absint::AbsVal;
        match e {
            Expr::Int(v, _) => AbsVal::Int(Interval::point(*v)),
            Expr::Bool(b, _) => AbsVal::Bool(AbsBool::from_bool(*b)),
            Expr::Var(name, _) => {
                if let Some(b) = z.bools.get(name) {
                    AbsVal::Bool(*b)
                } else if let Some(arr) = z.arrays.get(name) {
                    AbsVal::Array(arr.summary)
                } else {
                    AbsVal::Int(z.project(name))
                }
            }
            Expr::Index(name, idx, _) => {
                let _ = self.eval(z, idx);
                self.check_index(z, name, idx, e.span());
                match z.arrays.get(name) {
                    Some(arr) => AbsVal::Int(arr.summary),
                    None => AbsVal::Int(Interval::TOP),
                }
            }
            Expr::Unary(UnOp::Neg, inner, _) => {
                AbsVal::Int(crate::absint::as_interval(self.eval(z, inner)).neg())
            }
            Expr::Unary(UnOp::Not, inner, _) => {
                AbsVal::Bool(!crate::absint::as_bool(self.eval(z, inner)))
            }
            Expr::Binary(op, a, b, _) => {
                if op.is_logical() {
                    let (a, b) = (
                        crate::absint::as_bool(self.eval(z, a)),
                        crate::absint::as_bool(self.eval(z, b)),
                    );
                    AbsVal::Bool(match op {
                        BinOp::And => a.and(b),
                        _ => a.or(b),
                    })
                } else if op.is_comparison() {
                    let (av, bv) = (
                        crate::absint::as_interval(self.eval(z, a)),
                        crate::absint::as_interval(self.eval(z, b)),
                    );
                    AbsVal::Bool(self.compare_lin(z, *op, a, b, av, bv))
                } else {
                    let (av, bv) = (
                        crate::absint::as_interval(self.eval(z, a)),
                        crate::absint::as_interval(self.eval(z, b)),
                    );
                    if matches!(op, BinOp::Div | BinOp::Rem) {
                        self.check_div(z, b, bv, e.span());
                    }
                    AbsVal::Int(match op {
                        BinOp::Add => av.add(bv),
                        BinOp::Sub => av.sub(bv),
                        BinOp::Mul => av.mul(bv),
                        BinOp::Div => av.div_total(bv),
                        _ => av.rem_total(bv),
                    })
                }
            }
            Expr::Call(builtin, args, _) => {
                let vals: Vec<Interval> = args
                    .iter()
                    .map(|a| crate::absint::as_interval(self.eval(z, a)))
                    .collect();
                AbsVal::Int(match builtin {
                    Builtin::Min => Interval::of(
                        vals[0].lo().min(vals[1].lo()),
                        vals[0].hi().min(vals[1].hi()),
                    ),
                    Builtin::Max => Interval::of(
                        vals[0].lo().max(vals[1].lo()),
                        vals[0].hi().max(vals[1].hi()),
                    ),
                    Builtin::Abs => crate::absint::abs_interval(vals[0]),
                    Builtin::Roundup => Interval::TOP,
                })
            }
            Expr::UserCall(_, args, _) => {
                for a in args {
                    let _ = self.eval(z, a);
                }
                AbsVal::Int(Interval::TOP)
            }
            Expr::Hole(kind, _, _) => match kind {
                cpr_lang::HoleKind::Cond => AbsVal::Bool(AbsBool::Unknown),
                cpr_lang::HoleKind::IntExpr => AbsVal::Int(Interval::TOP),
            },
        }
    }

    fn eval_bool(&mut self, z: &Zone, e: &Expr) -> AbsBool {
        crate::absint::as_bool(self.eval(z, e))
    }

    /// Comparison verdict, upgraded with the relational bound when both
    /// sides have linear views (`x < y` decides via the `x - y` entry even
    /// when the interval projections overlap).
    fn compare_lin(
        &mut self,
        z: &Zone,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        av: Interval,
        bv: Interval,
    ) -> AbsBool {
        let base = crate::absint::compare(op, av, bv);
        if base != AbsBool::Unknown {
            return base;
        }
        let (Some(la), Some(lb)) = (lin_of(z, a), lin_of(z, b)) else {
            return AbsBool::Unknown;
        };
        let (Some(ka), Some(kb)) = (la.1.checked_sub(lb.1), lb.1.checked_sub(la.1)) else {
            return AbsBool::Unknown;
        };
        // a - b = (va - vb) + (ka - kb); diff bounds from the DBM.
        let d = z.dim();
        let (ia, ib) = (la.0.unwrap_or(0), lb.0.unwrap_or(0));
        let up = badd(z.dbm[ia * d + ib], ka);
        let down = badd(z.dbm[ib * d + ia], kb);
        // `up` bounds a-b above; `-down` bounds it below.
        match op {
            BinOp::Lt if up != INF && up < 0 => AbsBool::True,
            BinOp::Lt if down != INF && down <= 0 => AbsBool::False,
            BinOp::Le if up != INF && up <= 0 => AbsBool::True,
            BinOp::Le if down != INF && down < 0 => AbsBool::False,
            BinOp::Gt if down != INF && down < 0 => AbsBool::True,
            BinOp::Gt if up != INF && up <= 0 => AbsBool::False,
            BinOp::Ge if down != INF && down <= 0 => AbsBool::True,
            BinOp::Ge if up != INF && up < 0 => AbsBool::False,
            BinOp::Eq if up == 0 && down == 0 => AbsBool::True,
            BinOp::Eq if (up != INF && up < 0) || (down != INF && down < 0) => AbsBool::False,
            BinOp::Ne if (up != INF && up < 0) || (down != INF && down < 0) => AbsBool::True,
            BinOp::Ne if up == 0 && down == 0 => AbsBool::False,
            _ => AbsBool::Unknown,
        }
    }

    fn check_div(&mut self, z: &Zone, divisor: &Expr, iv: Interval, span: Span) {
        let excluded = iv.lo() > 0 || iv.hi() < 0;
        let fingerprinted =
            !excluded && fingerprint(divisor).is_some_and(|f| z.nonzero.contains_key(&f));
        self.note_site(span, SiteKind::Div, "", 0, excluded || fingerprinted);
    }

    fn check_index(&mut self, z: &Zone, name: &str, idx: &Expr, span: Span) {
        let Some(arr) = z.arrays.get(name) else {
            return;
        };
        let len = arr.len;
        let safe = match lin_of(z, idx) {
            Some((None, k)) => 0 <= k && k < len,
            Some((Some(v), k)) => {
                let d = z.dim();
                let lo_ok = z.dbm[v] != INF && z.dbm[v] <= k;
                let abs_hi = z.dbm[v * d];
                let abs_ok = abs_hi != INF && badd(abs_hi, k) < len;
                let rel_ok = z.slot(&len_name(name)).is_some_and(|l| {
                    let c = z.dbm[v * d + l];
                    c != INF && badd(c, k) <= -1
                });
                lo_ok && (abs_ok || rel_ok)
            }
            None => {
                let iv = crate::absint::as_interval(self.eval(z, idx));
                iv.lo() >= 0 && iv.hi() < len
            }
        };
        self.note_site(span, SiteKind::Index, name, len, safe);
    }

    /// Contracts `state` under `cond == polarity`; `None` when infeasible.
    fn refine(&mut self, state: Zone, cond: &Expr, polarity: bool) -> Option<Zone> {
        match cond {
            Expr::Bool(b, _) => (*b == polarity).then_some(state),
            Expr::Var(name, _) if state.bools.contains_key(name) => {
                let want = AbsBool::from_bool(polarity);
                match state.bools.get(name) {
                    Some(cur) if *cur == !want => None,
                    _ => {
                        let mut s = state;
                        s.bools.insert(name.clone(), want);
                        Some(s)
                    }
                }
            }
            Expr::Unary(UnOp::Not, inner, _) => self.refine(state, inner, !polarity),
            Expr::Binary(BinOp::And, a, b, _) if polarity => self
                .refine(state, a, true)
                .and_then(|s| self.refine(s, b, true)),
            Expr::Binary(BinOp::Or, a, b, _) if !polarity => self
                .refine(state, a, false)
                .and_then(|s| self.refine(s, b, false)),
            Expr::Binary(op, a, b, _) if op.is_comparison() => {
                let op = if polarity {
                    *op
                } else {
                    crate::absint::negate_cmp(*op)
                };
                self.refine_cmp(state, op, a, b)
            }
            _ => match self.eval_bool(&state, cond) {
                v if v == AbsBool::from_bool(!polarity) => None,
                _ => Some(state),
            },
        }
    }

    fn refine_cmp(&mut self, mut state: Zone, op: BinOp, a: &Expr, b: &Expr) -> Option<Zone> {
        if op == BinOp::Ne {
            // `e != 0` pins a nonzero fingerprint for `e`, whatever its
            // shape; additionally, endpoint removal below when linear.
            let target = match (a, b) {
                (e, Expr::Int(0, _)) | (Expr::Int(0, _), e) => Some(e),
                _ => None,
            };
            if let Some(e) = target {
                if let Some(f) = fingerprint(e) {
                    let mut vars = Vec::new();
                    expr_uses(e, &mut vars);
                    state.nonzero.insert(f, vars.into_iter().collect());
                }
            }
        }
        let (la, lb) = (lin_of(&state, a), lin_of(&state, b));
        match (la, lb) {
            (Some(la), Some(lb)) => {
                let feasible = match op {
                    BinOp::Lt => add_le(&mut state, la, lb, -1),
                    BinOp::Le => add_le(&mut state, la, lb, 0),
                    BinOp::Gt => add_le(&mut state, lb, la, -1),
                    BinOp::Ge => add_le(&mut state, lb, la, 0),
                    BinOp::Eq => add_le(&mut state, la, lb, 0) && add_le(&mut state, lb, la, 0),
                    BinOp::Ne => return self.refine_ne(state, la, lb),
                    _ => true,
                };
                if !feasible || !state.close() {
                    return None;
                }
                Some(state)
            }
            _ => {
                // No linear view: fall back to the interval verdict — a
                // definitely-contradicted comparison still kills the path.
                let av = crate::absint::as_interval(self.eval(&state, a));
                let bv = crate::absint::as_interval(self.eval(&state, b));
                if self.compare_lin(&state, op, a, b, av, bv) == AbsBool::False {
                    None
                } else {
                    Some(state)
                }
            }
        }
    }

    /// `la != lb`: decidable only at shared points; removable at endpoints.
    fn refine_ne(&mut self, mut state: Zone, la: LinE, lb: LinE) -> Option<Zone> {
        match (la, lb) {
            ((Some(v), ka), (None, kb)) | ((None, kb), (Some(v), ka)) => {
                let t = kb.checked_sub(ka)?;
                let iv = {
                    let d = state.dim();
                    let hi = state.dbm[v * d];
                    let lo = state.dbm[v];
                    (lo, hi)
                };
                let (lo_raw, hi_raw) = iv;
                if lo_raw != INF && hi_raw != INF && -lo_raw == t && hi_raw == t {
                    return None; // the variable is exactly the excluded point
                }
                if lo_raw != INF && -lo_raw == t {
                    state.set_ub(0, v, -(t.checked_add(1)?));
                }
                if hi_raw != INF && hi_raw == t {
                    state.set_ub(v, 0, t.checked_sub(1)?);
                }
                if !state.close() {
                    return None;
                }
                Some(state)
            }
            ((None, ka), (None, kb)) => (ka != kb).then_some(state),
            _ => Some(state),
        }
    }
}

/// Adds `la <= lb + slack` to the DBM; returns feasibility of the
/// variable-free residue (the DBM part is checked by closure).
fn add_le(state: &mut Zone, la: LinE, lb: LinE, slack: i64) -> bool {
    // va + ka <= vb + kb + slack  ⇔  va - vb <= kb - ka + slack
    let c = clamp128(lb.1 as i128 - la.1 as i128 + slack as i128);
    match (la.0, lb.0) {
        (Some(i), Some(j)) if i == j => c >= 0,
        (None, None) => c >= 0,
        (Some(i), Some(j)) => {
            state.set_ub(i, j, c);
            true
        }
        (Some(i), None) => {
            state.set_ub(i, 0, c);
            true
        }
        (None, Some(j)) => {
            state.set_ub(0, j, c);
            true
        }
    }
}

/// Linear view of `e` in `z`: `Some((Some(slot), k))` for `v + k`,
/// `Some((None, k))` for the constant `k`, `None` otherwise.
fn lin_of(z: &Zone, e: &Expr) -> Option<LinE> {
    match e {
        Expr::Int(v, _) => Some((None, *v)),
        Expr::Var(name, _) => z.slot(name).map(|s| (Some(s), 0)),
        Expr::Unary(UnOp::Neg, inner, _) => match lin_of(z, inner)? {
            (None, k) => Some((None, k.checked_neg()?)),
            _ => None,
        },
        Expr::Binary(BinOp::Add, a, b, _) => {
            let (la, lb) = (lin_of(z, a)?, lin_of(z, b)?);
            match (la.0, lb.0) {
                (Some(_), Some(_)) => None,
                (v, w) => Some((v.or(w), la.1.checked_add(lb.1)?)),
            }
        }
        Expr::Binary(BinOp::Sub, a, b, _) => {
            let (la, lb) = (lin_of(z, a)?, lin_of(z, b)?);
            match lb.0 {
                Some(_) => None,
                None => Some((la.0, la.1.checked_sub(lb.1)?)),
            }
        }
        _ => None,
    }
}

fn kill_fingerprints(z: &mut Zone, name: &str) {
    z.nonzero.retain(|_, vars| !vars.contains(name));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_lang::{check, parse};

    fn zsum(src: &str) -> ZoneSummary {
        let program = parse(src).unwrap();
        check(&program).unwrap();
        analyze_zones(&program)
    }

    #[test]
    fn relational_loop_bound_keeps_array_write_in_bounds() {
        let s = zsum(
            "program p {
               input len in [1, 64];
               var a: int[64];
               var i: int = 0;
               while (i < len) { a[i] = i * 2; i = i + 1; }
               return a[0];
             }",
        );
        assert_eq!(s.index_sites, 2);
        assert!(s.possible_oob.is_empty(), "{:?}", s.possible_oob);
        let stats = s.loop_heads.values().next().unwrap();
        assert!(stats.widen_rounds >= 1);
    }

    #[test]
    fn unguarded_index_is_flagged() {
        let s = zsum(
            "program p {
               input i in [0, 10];
               var a: int[4];
               a[i] = 1;
               return a[0];
             }",
        );
        assert_eq!(s.index_sites, 2);
        assert_eq!(s.possible_oob.len(), 1);
        assert_eq!(s.possible_oob[0].1, "a");
        assert_eq!(s.possible_oob[0].2, 4);
    }

    #[test]
    fn nonzero_fingerprint_suppresses_division_warning() {
        let clean = zsum(
            "program p {
               input x in [-50, 50];
               bug d requires (x != 0);
               return 1000 / x;
             }",
        );
        assert_eq!(clean.div_sites, 1);
        assert!(clean.possible_div_zero.is_empty());

        let dirty = zsum(
            "program p {
               input x in [-50, 50];
               return 1000 / x;
             }",
        );
        assert_eq!(dirty.possible_div_zero.len(), 1);
    }

    #[test]
    fn compound_nonzero_fingerprint_matches_structurally() {
        let s = zsum(
            "program p {
               input x in [-8, 8];
               input y in [-8, 8];
               assume(x * y != 0);
               return 100 / (x * y);
             }",
        );
        assert!(s.possible_div_zero.is_empty());
    }

    #[test]
    fn fingerprint_is_killed_by_reassignment() {
        let s = zsum(
            "program p {
               input x in [-8, 8];
               input y in [-8, 8];
               var d: int = x;
               assume(d != 0);
               d = y;
               return 100 / d;
             }",
        );
        assert_eq!(s.possible_div_zero.len(), 1);
    }

    #[test]
    fn narrowing_recovers_finite_loop_counter() {
        let s = zsum(
            "program p {
               input n in [0, 8];
               var i: int = 0;
               while (i < n) { i = i + 1; }
               return i;
             }",
        );
        let exit = s.return_zone.as_ref().unwrap();
        let iv = exit.project("i");
        assert!(iv.hi() <= 8, "widened bound survived narrowing: {iv:?}");
        assert!(iv.lo() >= 0);
        let stats = s.loop_heads.values().next().unwrap();
        assert!(stats.widen_rounds >= 1);
        assert!(stats.narrow_rounds >= 1);
    }

    #[test]
    fn offset_assignments_stay_relational() {
        let s = zsum(
            "program p {
               input y in [0, 5];
               var x: int = y + 3;
               return x;
             }",
        );
        let exit = s.return_zone.as_ref().unwrap();
        assert_eq!(exit.diff_upper("x", "y"), Some(3));
        assert_eq!(exit.diff_upper("y", "x"), Some(-3));
    }

    #[test]
    fn bug_spec_refinement_proves_guarded_read() {
        // The records_lookup shape: the read after the bug's fallthrough is
        // provably in bounds only through idx - len <= -1 and len$a = 64.
        let s = zsum(
            "program p {
               input idx in [-128, 255];
               input len in [1, 64];
               var records: int[64];
               var i: int = 0;
               while (i < len) { records[i] = i; i = i + 1; }
               bug oob requires (idx >= 0 && idx < len);
               return records[idx];
             }",
        );
        assert!(s.possible_oob.is_empty(), "{:?}", s.possible_oob);
        assert!(s.bug_zone.is_some());
    }

    #[test]
    fn infeasible_relational_branch_is_pruned() {
        // x <= y and y <= z and x > z + 5 is a negative cycle: the guarded
        // division by zero can never execute.
        let s = zsum(
            "program p {
               input x in [-100, 100];
               input y in [-100, 100];
               input z in [-100, 100];
               input w in [-1, 1];
               assume(x <= y);
               assume(y <= z);
               if (x > z + 5) { return 1 / w; }
               return 0;
             }",
        );
        assert_eq!(s.div_sites, 0);
        assert!(s.possible_div_zero.is_empty());
    }
}
