//! Independent replay checker for screening certificates.
//!
//! The static screen (see [`crate::screen`]) may substitute an `Unsat`
//! verdict for a solver query only when the solver's root pass refutes it.
//! That pass emits a [`ScreenCertificate`] — the exact deduction sequence
//! that closed the query — and **this module replays it before the screen
//! is allowed to act**. The replayer is deliberately written against
//! `cpr_smt`'s *public* term/interval API only: it shares none of the
//! solver's contraction, enclosure, or zone-decomposition code, so a bug
//! in the solver's inference cannot silently vouch for itself. A failed
//! replay demotes the decision back to the real solver (costing speed,
//! never soundness) and bumps the `screen.cert_rejected` counter.
//!
//! # Acceptance rules
//!
//! The checker maintains its own box (variable → interval map, seeded
//! from the query's domains exactly as the solver seeds its search box)
//! and walks the certificate steps:
//!
//! * **Narrow** — re-derives the narrowing with its own HC4 revision and
//!   accepts iff every claimed interval *contains* the checker-derived
//!   one (`claimed ⊇ derived`); since the derived box over-approximates
//!   the query's solutions, any claimed superset of it does too, so
//!   applying the claimed writes keeps the replay box sound.
//! * **Empty / FalseEnclosure** — the checker's own revision must empty a
//!   domain (resp. its own enclosure must evaluate to `false`).
//! * **NegativeCycle** — every edge is re-derived: constraint edges by
//!   the checker's own difference decomposition (including the
//!   saturation guard), bound edges against the replay box; then the
//!   edges must chain into a cycle with a negative weight sum.
//! * **ConstFalse / Complement** — purely structural re-checks.
//!
//! Every step must name constraints actually asserted by the query — a
//! certificate can never smuggle in facts the caller did not assert.

use std::collections::BTreeMap;

use cpr_smt::{
    ArithOp, CertStep, CmpOp, Domains, EdgeOrigin, Interval, ScreenCertificate, Sort, TermData,
    TermId, TermPool, VarId, ZoneEdge,
};

/// Three-valued truth, local to the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Truth {
    True,
    False,
    Unknown,
}

impl Truth {
    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }
}

/// The checker's replay box: a sorted variable → interval map.
type ReplayBox = BTreeMap<VarId, Interval>;

/// Signals an emptied domain during the checker's own revision.
struct EmptiedDomain;

/// Replays `cert` against the query `(constraints, domains)` and returns
/// whether the certificate justifies an `Unsat` verdict. `default` is the
/// solver's default domain for unbounded integer variables (pass
/// `solver.config().default_domain` so both sides seed identically).
pub fn replay(
    pool: &TermPool,
    constraints: &[TermId],
    domains: &Domains,
    default: Interval,
    cert: &ScreenCertificate,
) -> bool {
    let asserted = |t: TermId| constraints.contains(&t);
    let mut rbox: ReplayBox = BTreeMap::new();
    for &c in constraints {
        for v in pool.vars_of(c) {
            rbox.entry(v).or_insert_with(|| match pool.var_sort(v) {
                Sort::Bool => Interval::of(0, 1),
                Sort::Int => domains.get(v).unwrap_or(default),
            });
        }
    }
    for step in &cert.steps {
        match step {
            CertStep::ConstFalse { constraint } => {
                return asserted(*constraint)
                    && pool.data(*constraint) == TermData::BoolConst(false);
            }
            CertStep::Complement { a, b } => {
                return asserted(*a) && asserted(*b) && complementary(pool, *a, *b);
            }
            CertStep::Narrow { constraint, writes } => {
                if !asserted(*constraint) {
                    return false;
                }
                let mut derived = rbox.clone();
                match revise(pool, *constraint, true, &mut derived) {
                    // The checker's own revision already refutes the box:
                    // stronger than what the step claims, so accept.
                    Err(EmptiedDomain) => return true,
                    Ok(()) => {
                        for (v, claimed) in writes {
                            let Some(j) = derived.get(v) else {
                                return false;
                            };
                            if !claimed.contains_interval(*j) {
                                return false;
                            }
                            rbox.insert(*v, *claimed);
                        }
                    }
                }
            }
            CertStep::Empty { constraint } => {
                return asserted(*constraint)
                    && revise(pool, *constraint, true, &mut rbox.clone()).is_err();
            }
            CertStep::FalseEnclosure { constraint } => {
                return asserted(*constraint) && truth_of(pool, *constraint, &rbox) == Truth::False;
            }
            CertStep::NegativeCycle { edges } => {
                return cycle_justified(pool, constraints, &rbox, edges);
            }
        }
    }
    // Steps exhausted without a refuting step: nothing was proven.
    false
}

/// Structural complement check (`a = ¬b`, `b = ¬a`, or the same
/// comparison under negated operators) — the checker's own version of
/// the solver's fast-path test.
fn complementary(pool: &TermPool, a: TermId, b: TermId) -> bool {
    match (pool.data(a), pool.data(b)) {
        (TermData::Not(x), _) if x == b => true,
        (_, TermData::Not(y)) if y == a => true,
        (TermData::Cmp(op1, x1, y1), TermData::Cmp(op2, x2, y2)) => {
            x1 == x2 && y1 == y2 && op1.negate() == op2
        }
        _ => false,
    }
}

/// Forward enclosure of an integer term under the replay box. Variables
/// missing from the box (ill-formed certificates) enclose to the widest
/// interval, which can only make the checker *more* conservative.
fn enclose(pool: &TermPool, t: TermId, rbox: &ReplayBox) -> Interval {
    match pool.data(t) {
        TermData::IntConst(v) => Interval::point(v),
        TermData::Var(v) => rbox.get(&v).copied().unwrap_or(Interval::TOP),
        TermData::Arith(op, a, b) => {
            let ia = enclose(pool, a, rbox);
            let ib = enclose(pool, b, rbox);
            match op {
                ArithOp::Add => ia.add(ib),
                ArithOp::Sub => ia.sub(ib),
                ArithOp::Mul => ia.mul(ib),
                ArithOp::Div => ia.div_total(ib),
                ArithOp::Rem => ia.rem_total(ib),
            }
        }
        TermData::Neg(a) => enclose(pool, a, rbox).neg(),
        TermData::Ite(c, a, b) => match truth_of(pool, c, rbox) {
            Truth::True => enclose(pool, a, rbox),
            Truth::False => enclose(pool, b, rbox),
            Truth::Unknown => enclose(pool, a, rbox).hull(enclose(pool, b, rbox)),
        },
        _ => Interval::point(0),
    }
}

/// Three-valued truth of a boolean term under the replay box.
fn truth_of(pool: &TermPool, t: TermId, rbox: &ReplayBox) -> Truth {
    match pool.data(t) {
        TermData::BoolConst(true) => Truth::True,
        TermData::BoolConst(false) => Truth::False,
        TermData::Var(v) => {
            let iv = rbox.get(&v).copied().unwrap_or(Interval::of(0, 1));
            if iv.is_point() {
                if iv.lo() == 0 {
                    Truth::False
                } else {
                    Truth::True
                }
            } else {
                Truth::Unknown
            }
        }
        TermData::Not(a) => truth_of(pool, a, rbox).not(),
        TermData::And(a, b) => truth_of(pool, a, rbox).and(truth_of(pool, b, rbox)),
        TermData::Or(a, b) => truth_of(pool, a, rbox).or(truth_of(pool, b, rbox)),
        TermData::Cmp(op, a, b) => {
            let ia = enclose(pool, a, rbox);
            let ib = enclose(pool, b, rbox);
            cmp_truth(op, ia, ib)
        }
        _ => Truth::Unknown,
    }
}

fn cmp_truth(op: CmpOp, a: Interval, b: Interval) -> Truth {
    match op {
        CmpOp::Lt => {
            if a.hi() < b.lo() {
                Truth::True
            } else if a.lo() >= b.hi() {
                Truth::False
            } else {
                Truth::Unknown
            }
        }
        CmpOp::Le => {
            if a.hi() <= b.lo() {
                Truth::True
            } else if a.lo() > b.hi() {
                Truth::False
            } else {
                Truth::Unknown
            }
        }
        CmpOp::Gt => cmp_truth(CmpOp::Lt, b, a),
        CmpOp::Ge => cmp_truth(CmpOp::Le, b, a),
        CmpOp::Eq => {
            if a.is_point() && b.is_point() && a.lo() == b.lo() {
                Truth::True
            } else if a.intersect(b).is_none() {
                Truth::False
            } else {
                Truth::Unknown
            }
        }
        CmpOp::Ne => cmp_truth(CmpOp::Eq, a, b).not(),
    }
}

fn narrow(rbox: &mut ReplayBox, v: VarId, iv: Interval) -> Result<(), EmptiedDomain> {
    let cur = rbox.get(&v).copied().unwrap_or(Interval::TOP);
    match cur.intersect(iv) {
        Some(n) => {
            rbox.insert(v, n);
            Ok(())
        }
        None => Err(EmptiedDomain),
    }
}

/// The checker's HC4 revision of one asserted boolean term: requires `t`
/// to hold with the given polarity and narrows the box in place. Matches
/// the solver's contraction *semantics* (it must be at least as tight,
/// or sound certificates would be rejected), but is written independently
/// against the public interval API.
fn revise(
    pool: &TermPool,
    t: TermId,
    required: bool,
    rbox: &mut ReplayBox,
) -> Result<(), EmptiedDomain> {
    match pool.data(t) {
        TermData::BoolConst(b) => {
            if b == required {
                Ok(())
            } else {
                Err(EmptiedDomain)
            }
        }
        TermData::Var(v) => {
            let target = i64::from(required);
            narrow(rbox, v, Interval::point(target))
        }
        TermData::Not(a) => revise(pool, a, !required, rbox),
        TermData::And(a, b) => {
            if required {
                revise(pool, a, true, rbox)?;
                revise(pool, b, true, rbox)
            } else {
                revise_disjunct(pool, (a, false), (b, false), rbox)
            }
        }
        TermData::Or(a, b) => {
            if required {
                revise_disjunct(pool, (a, true), (b, true), rbox)
            } else {
                revise(pool, a, false, rbox)?;
                revise(pool, b, false, rbox)
            }
        }
        TermData::Cmp(op, a, b) => {
            let eff = if required { op } else { op.negate() };
            revise_cmp(pool, eff, a, b, rbox)
        }
        _ => Ok(()),
    }
}

/// Union-hull revision through a disjunction: each disjunct revises a
/// copy of the box; surviving copies are hulled per variable.
fn revise_disjunct(
    pool: &TermPool,
    (a, ra): (TermId, bool),
    (b, rb): (TermId, bool),
    rbox: &mut ReplayBox,
) -> Result<(), EmptiedDomain> {
    let mut box_a = rbox.clone();
    let ok_a = revise(pool, a, ra, &mut box_a).is_ok();
    let mut box_b = rbox.clone();
    let ok_b = revise(pool, b, rb, &mut box_b).is_ok();
    match (ok_a, ok_b) {
        (false, false) => Err(EmptiedDomain),
        (true, false) => {
            *rbox = box_a;
            Ok(())
        }
        (false, true) => {
            *rbox = box_b;
            Ok(())
        }
        (true, true) => {
            for (v, iv) in rbox.iter_mut() {
                let ha = box_a.get(v).copied().unwrap_or(*iv);
                let hb = box_b.get(v).copied().unwrap_or(*iv);
                *iv = ha.hull(hb);
            }
            Ok(())
        }
    }
}

fn revise_cmp(
    pool: &TermPool,
    op: CmpOp,
    a: TermId,
    b: TermId,
    rbox: &mut ReplayBox,
) -> Result<(), EmptiedDomain> {
    let ia = enclose(pool, a, rbox);
    let ib = enclose(pool, b, rbox);
    match op {
        CmpOp::Eq => {
            let meet = ia.intersect(ib).ok_or(EmptiedDomain)?;
            push(pool, a, meet, rbox)?;
            push(pool, b, meet, rbox)
        }
        CmpOp::Ne => {
            if ia.is_point() && ib.is_point() && ia.lo() == ib.lo() {
                return Err(EmptiedDomain);
            }
            if ib.is_point() {
                let na = ia.remove_endpoint(ib.lo()).ok_or(EmptiedDomain)?;
                push(pool, a, na, rbox)?;
            }
            if ia.is_point() {
                let nb = ib.remove_endpoint(ia.lo()).ok_or(EmptiedDomain)?;
                push(pool, b, nb, rbox)?;
            }
            Ok(())
        }
        CmpOp::Lt => {
            let na = ia.below_strict(ib).ok_or(EmptiedDomain)?;
            let nb = ib.above_strict(ia).ok_or(EmptiedDomain)?;
            push(pool, a, na, rbox)?;
            push(pool, b, nb, rbox)
        }
        CmpOp::Le => {
            let na = ia.below(ib).ok_or(EmptiedDomain)?;
            let nb = ib.above(ia).ok_or(EmptiedDomain)?;
            push(pool, a, na, rbox)?;
            push(pool, b, nb, rbox)
        }
        CmpOp::Gt => revise_cmp(pool, CmpOp::Lt, b, a, rbox),
        CmpOp::Ge => revise_cmp(pool, CmpOp::Le, b, a, rbox),
    }
}

/// Backward push: requires the integer term `t` to take a value inside
/// `iv`, narrowing the box.
fn push(
    pool: &TermPool,
    t: TermId,
    iv: Interval,
    rbox: &mut ReplayBox,
) -> Result<(), EmptiedDomain> {
    match pool.data(t) {
        TermData::IntConst(v) => {
            if iv.contains(v) {
                Ok(())
            } else {
                Err(EmptiedDomain)
            }
        }
        TermData::Var(v) => narrow(rbox, v, iv),
        TermData::Neg(a) => push(pool, a, iv.neg(), rbox),
        TermData::Arith(op, a, b) => {
            let ia = enclose(pool, a, rbox);
            let ib = enclose(pool, b, rbox);
            match op {
                ArithOp::Add => {
                    let na = Interval::back_add(iv, ib, ia).ok_or(EmptiedDomain)?;
                    let nb = Interval::back_add(iv, ia, ib).ok_or(EmptiedDomain)?;
                    push(pool, a, na, rbox)?;
                    push(pool, b, nb, rbox)
                }
                ArithOp::Sub => {
                    let na = Interval::back_sub_lhs(iv, ib, ia).ok_or(EmptiedDomain)?;
                    let nb = Interval::back_sub_rhs(iv, ia, ib).ok_or(EmptiedDomain)?;
                    push(pool, a, na, rbox)?;
                    push(pool, b, nb, rbox)
                }
                ArithOp::Mul => {
                    let na = Interval::back_mul(iv, ib, ia).ok_or(EmptiedDomain)?;
                    push(pool, a, na, rbox)?;
                    let nb = Interval::back_mul(iv, ia, ib).ok_or(EmptiedDomain)?;
                    push(pool, b, nb, rbox)
                }
                // Division/remainder contract forward-only.
                ArithOp::Div | ArithOp::Rem => Ok(()),
            }
        }
        TermData::Ite(c, a, b) => match truth_of(pool, c, rbox) {
            Truth::True => push(pool, a, iv, rbox),
            Truth::False => push(pool, b, iv, rbox),
            Truth::Unknown => {
                let ia = enclose(pool, a, rbox);
                let ib = enclose(pool, b, rbox);
                match (ia.intersect(iv), ib.intersect(iv)) {
                    (None, None) => Err(EmptiedDomain),
                    (Some(_), None) => {
                        revise(pool, c, true, rbox)?;
                        push(pool, a, iv, rbox)
                    }
                    (None, Some(_)) => {
                        revise(pool, c, false, rbox)?;
                        push(pool, b, iv, rbox)
                    }
                    (Some(_), Some(_)) => Ok(()),
                }
            }
        },
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------
// Negative-cycle verification
// ---------------------------------------------------------------------

/// The checker's own linear view of an integer term: `±pos ∓ neg + k`,
/// with the exact `i128` range of the node under the replay box (the
/// saturation guard: concrete evaluation saturates at `i64`, so a
/// decomposition is only faithful when no node can leave `i64`).
#[derive(Clone, Copy)]
struct LinView {
    pos: Option<VarId>,
    neg: Option<VarId>,
    k: i128,
    lo: i128,
    hi: i128,
}

impl LinView {
    fn constant(v: i128) -> LinView {
        LinView {
            pos: None,
            neg: None,
            k: v,
            lo: v,
            hi: v,
        }
    }

    fn negated(self) -> LinView {
        LinView {
            pos: self.neg,
            neg: self.pos,
            k: -self.k,
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    fn add(self, other: LinView) -> Option<LinView> {
        let mut pos: Vec<VarId> = [self.pos, other.pos].into_iter().flatten().collect();
        let mut neg: Vec<VarId> = [self.neg, other.neg].into_iter().flatten().collect();
        let mut i = 0;
        while i < pos.len() {
            if let Some(j) = neg.iter().position(|&v| v == pos[i]) {
                pos.remove(i);
                neg.remove(j);
            } else {
                i += 1;
            }
        }
        if pos.len() > 1 || neg.len() > 1 {
            return None;
        }
        Some(LinView {
            pos: pos.first().copied(),
            neg: neg.first().copied(),
            k: self.k + other.k,
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        })
    }
}

fn lin_view(pool: &TermPool, t: TermId, rbox: &ReplayBox) -> Option<LinView> {
    let out = match pool.data(t) {
        TermData::IntConst(v) => LinView::constant(v as i128),
        TermData::Var(v) => {
            let iv = *rbox.get(&v)?;
            LinView {
                pos: Some(v),
                neg: None,
                k: 0,
                lo: iv.lo() as i128,
                hi: iv.hi() as i128,
            }
        }
        TermData::Neg(a) => lin_view(pool, a, rbox)?.negated(),
        TermData::Arith(ArithOp::Add, a, b) => {
            lin_view(pool, a, rbox)?.add(lin_view(pool, b, rbox)?)?
        }
        TermData::Arith(ArithOp::Sub, a, b) => {
            lin_view(pool, a, rbox)?.add(lin_view(pool, b, rbox)?.negated())?
        }
        TermData::Arith(ArithOp::Mul, a, b) => {
            let la = lin_view(pool, a, rbox)?;
            let lb = lin_view(pool, b, rbox)?;
            let scale = |l: LinView, c: i128| -> Option<LinView> {
                match c {
                    0 => Some(LinView::constant(0)),
                    1 => Some(l),
                    -1 => Some(l.negated()),
                    _ if l.pos.is_none() && l.neg.is_none() => {
                        Some(LinView::constant(l.k.checked_mul(c)?))
                    }
                    _ => None,
                }
            };
            if la.pos.is_none() && la.neg.is_none() {
                scale(lb, la.k)?
            } else if lb.pos.is_none() && lb.neg.is_none() {
                scale(la, lb.k)?
            } else {
                return None;
            }
        }
        _ => return None,
    };
    if out.lo < i64::MIN as i128 || out.hi > i64::MAX as i128 {
        return None;
    }
    Some(out)
}

/// A difference fact `dst - src ≤ weight` derived by the checker.
#[derive(PartialEq, Eq)]
struct Derived {
    src: Option<VarId>,
    dst: Option<VarId>,
    weight: i128,
}

fn derive_edges(
    pool: &TermPool,
    t: TermId,
    polarity: bool,
    rbox: &ReplayBox,
    out: &mut Vec<Derived>,
) {
    match pool.data(t) {
        TermData::BoolConst(b) if b != polarity => {
            out.push(Derived {
                src: None,
                dst: None,
                weight: -1,
            });
        }
        TermData::Var(v) if rbox.contains_key(&v) => {
            let d = if polarity {
                Derived {
                    src: Some(v),
                    dst: None,
                    weight: -1,
                }
            } else {
                Derived {
                    src: None,
                    dst: Some(v),
                    weight: 0,
                }
            };
            out.push(d);
        }
        TermData::Not(a) => derive_edges(pool, a, !polarity, rbox, out),
        TermData::And(a, b) if polarity => {
            derive_edges(pool, a, true, rbox, out);
            derive_edges(pool, b, true, rbox, out);
        }
        TermData::Or(a, b) if !polarity => {
            derive_edges(pool, a, false, rbox, out);
            derive_edges(pool, b, false, rbox, out);
        }
        TermData::Cmp(op, a, b) => {
            let op = if polarity { op } else { op.negate() };
            let (Some(la), Some(lb)) = (lin_view(pool, a, rbox), lin_view(pool, b, rbox)) else {
                return;
            };
            let mut le = |l: LinView, r: LinView, slack: i128| {
                if let Some(d) = l.add(r.negated()) {
                    out.push(Derived {
                        src: d.neg,
                        dst: d.pos,
                        weight: slack - d.k,
                    });
                }
            };
            match op {
                CmpOp::Le => le(la, lb, 0),
                CmpOp::Lt => le(la, lb, -1),
                CmpOp::Ge => le(lb, la, 0),
                CmpOp::Gt => le(lb, la, -1),
                CmpOp::Eq => {
                    le(la, lb, 0);
                    le(lb, la, 0);
                }
                CmpOp::Ne => {}
            }
        }
        _ => {}
    }
}

/// Verifies a claimed negative cycle: the edges must chain (each `dst` is
/// the next `src`), telescope to a strictly negative sum, and each edge
/// must be independently justified — constraint edges by re-deriving the
/// decomposition of an *asserted* constraint (any derived weight at most
/// the claimed one justifies it), bound edges against the replay box.
fn cycle_justified(
    pool: &TermPool,
    constraints: &[TermId],
    rbox: &ReplayBox,
    edges: &[ZoneEdge],
) -> bool {
    if edges.is_empty() {
        return false;
    }
    let chained = edges
        .iter()
        .zip(edges.iter().cycle().skip(1))
        .all(|(e, next)| e.dst == next.src);
    if !chained {
        return false;
    }
    if edges.iter().map(|e| e.weight).sum::<i128>() >= 0 {
        return false;
    }
    edges.iter().all(|e| match e.origin {
        EdgeOrigin::Constraint(t) => {
            if !constraints.contains(&t) {
                return false;
            }
            let mut derived = Vec::new();
            derive_edges(pool, t, true, rbox, &mut derived);
            derived
                .iter()
                .any(|d| d.src == e.src && d.dst == e.dst && d.weight <= e.weight)
        }
        EdgeOrigin::UpperBound(v) => {
            e.src.is_none()
                && e.dst == Some(v)
                && rbox.get(&v).is_some_and(|iv| e.weight >= iv.hi() as i128)
        }
        EdgeOrigin::LowerBound(v) => {
            e.dst.is_none()
                && e.src == Some(v)
                && rbox
                    .get(&v)
                    .is_some_and(|iv| e.weight >= -(iv.lo() as i128))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_smt::{SatResult, Solver, SolverConfig};

    fn setup() -> (TermPool, Solver, Domains) {
        let pool = TermPool::new();
        let solver = Solver::new(SolverConfig::default());
        (pool, solver, Domains::new())
    }

    fn certified_and_replayed(
        pool: &TermPool,
        solver: &Solver,
        q: &[TermId],
        domains: &Domains,
        zones: bool,
    ) -> Option<bool> {
        let cert = solver.refute_root_certified(pool, q, domains, zones)?;
        Some(replay(
            pool,
            q,
            domains,
            solver.config().default_domain,
            &cert,
        ))
    }

    #[test]
    fn interval_certificates_replay() {
        let (mut pool, solver, mut domains) = setup();
        let x = pool.var("x", Sort::Int);
        let xv = pool.var_term(x);
        let c5 = pool.int(5);
        let c3 = pool.int(3);
        domains.bound(x, -100, 100);
        // x > 5 && x < 3: narrows then empties / falsifies.
        let g = pool.gt(xv, c5);
        let l = pool.lt(xv, c3);
        assert_eq!(
            certified_and_replayed(&pool, &solver, &[g, l], &domains, false),
            Some(true)
        );
    }

    #[test]
    fn zone_certificates_replay() {
        let (mut pool, solver, mut domains) = setup();
        let x = pool.var("x", Sort::Int);
        let y = pool.var("y", Sort::Int);
        let xv = pool.var_term(x);
        let yv = pool.var_term(y);
        domains.bound(x, -1_000_000, 1_000_000);
        domains.bound(y, -1_000_000, 1_000_000);
        let a = pool.lt(xv, yv);
        let b = pool.lt(yv, xv);
        let cert = solver
            .refute_root_certified(&pool, &[a, b], &domains, true)
            .expect("x<y && y<x is zone-refutable");
        assert!(cert.uses_zones());
        assert!(replay(
            &pool,
            &[a, b],
            &domains,
            solver.config().default_domain,
            &cert
        ));
        // The interval-only pass alone cannot close this query.
        assert!(solver
            .refute_root_certified(&pool, &[a, b], &domains, false)
            .is_none());
    }

    #[test]
    fn tampered_certificates_are_rejected() {
        let (mut pool, solver, mut domains) = setup();
        let x = pool.var("x", Sort::Int);
        let y = pool.var("y", Sort::Int);
        let xv = pool.var_term(x);
        let yv = pool.var_term(y);
        domains.bound(x, -1000, 1000);
        domains.bound(y, -1000, 1000);
        let a = pool.lt(xv, yv);
        let b = pool.lt(yv, xv);
        let cert = solver
            .refute_root_certified(&pool, &[a, b], &domains, true)
            .unwrap();
        // Replaying against a query that never asserted `b` must fail:
        // certificates cannot smuggle in constraints.
        assert!(!replay(
            &pool,
            &[a],
            &domains,
            solver.config().default_domain,
            &cert
        ));
        // Corrupting a cycle weight must fail the telescoping check.
        let mut bad = cert.clone();
        if let Some(CertStep::NegativeCycle { edges }) = bad.steps.last_mut() {
            for e in edges.iter_mut() {
                e.weight += 1_000;
            }
        }
        assert!(!replay(
            &pool,
            &[a, b],
            &domains,
            solver.config().default_domain,
            &bad
        ));
    }

    #[test]
    fn certified_refutations_agree_with_check() {
        // Every certificate the solver emits must replay, and the real
        // search must agree with Unsat — across a small query zoo.
        let (mut pool, mut solver, mut domains) = setup();
        let x = pool.var("x", Sort::Int);
        let y = pool.var("y", Sort::Int);
        let xv = pool.var_term(x);
        let yv = pool.var_term(y);
        domains.bound(x, -50, 50);
        domains.bound(y, -50, 50);
        let c0 = pool.int(0);
        let c7 = pool.int(7);
        let sum = pool.add(xv, yv);
        let diff = pool.sub(xv, yv);
        let queries: Vec<Vec<TermId>> = vec![
            vec![pool.lt(xv, yv), pool.lt(yv, xv)],
            vec![pool.gt(xv, c7), pool.lt(xv, c0)],
            vec![pool.le(sum, c0), pool.gt(sum, c7)],
            vec![pool.eq(diff, c7), pool.lt(xv, yv)],
            vec![pool.ge(xv, c0), pool.le(yv, c7)],
            vec![pool.ne(xv, xv)],
        ];
        for q in &queries {
            if let Some(cert) = solver.refute_root_certified(&pool, q, &domains, true) {
                assert!(
                    replay(&pool, q, &domains, solver.config().default_domain, &cert),
                    "certificate for {q:?} must replay"
                );
                assert_eq!(
                    solver.check(&pool, q, &domains),
                    SatResult::Unsat,
                    "screened query {q:?} must be solver-Unsat"
                );
            }
        }
    }
}
