//! Control-flow graph construction and reachability over `cpr-lang` ASTs.
//!
//! The CFG covers the **main body** of a program. User-defined functions are
//! pure expression-level helpers (no holes, bug markers, or effects on main
//! state), so calls to them behave like opaque expressions and the functions
//! themselves contribute no control flow of their own.
//!
//! The graph is statement-granular: every statement becomes one node, plus a
//! synthetic [`NodeKind::Entry`] and [`NodeKind::Exit`]. `if` statements
//! become a branch node with edges into both arm blocks; `while` statements
//! become a loop-head node with a back edge from the body and an exit edge to
//! the continuation. Statements that can never gain an incoming edge (for
//! example, code after a `return` in the same block) stay disconnected and
//! are reported as unreachable by [`Cfg::reachable`].

use std::collections::BTreeMap;

use cpr_lang::{Expr, Program, Span, Stmt};

/// Index of a node inside a [`Cfg`].
pub type NodeId = usize;

/// What a CFG node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Synthetic entry node (always id 0).
    Entry,
    /// Synthetic exit node (always id 1).
    Exit,
    /// A `var` declaration.
    Decl,
    /// A scalar assignment.
    Assign,
    /// An array-element assignment.
    AssignIndex,
    /// The condition of an `if`.
    Branch,
    /// The condition of a `while` (loop head).
    LoopHead,
    /// A `return`.
    Return,
    /// An `assert`.
    Assert,
    /// An `assume`.
    Assume,
    /// The `bug <name> requires (σ)` location.
    Bug,
}

/// One node of the control-flow graph.
#[derive(Debug, Clone)]
pub struct CfgNode {
    /// What the node represents.
    pub kind: NodeKind,
    /// Source span of the underlying statement (empty for entry/exit).
    pub span: Span,
    /// Variables written by the node. Array-element writes list the array
    /// (a *weak* update: the node both uses and defines it).
    pub defs: Vec<String>,
    /// Variables read by the node, including array names in reads/writes and
    /// the argument list of a patch hole.
    pub uses: Vec<String>,
    /// Whether the statement contains the patch hole.
    pub has_hole: bool,
    /// Successor edges.
    pub succs: Vec<NodeId>,
    /// Predecessor edges (mirror of `succs`).
    pub preds: Vec<NodeId>,
}

impl CfgNode {
    fn new(kind: NodeKind, span: Span) -> CfgNode {
        CfgNode {
            kind,
            span,
            defs: Vec::new(),
            uses: Vec::new(),
            has_hole: false,
            succs: Vec::new(),
            preds: Vec::new(),
        }
    }
}

/// A statement-granular control-flow graph of a program's main body.
#[derive(Debug, Clone)]
pub struct Cfg {
    nodes: Vec<CfgNode>,
    bug: Option<NodeId>,
    hole: Option<NodeId>,
    /// Assume-edges: `(branch, arm-entry) → polarity` for edges that carry
    /// the branch/loop condition as a path assumption.
    assume: BTreeMap<(NodeId, NodeId), bool>,
}

/// Collects the variable names an expression reads into `out` (array names
/// of element reads and the visible-variable list of a patch hole included).
pub fn expr_uses(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Int(..) | Expr::Bool(..) => {}
        Expr::Var(name, _) => out.push(name.clone()),
        Expr::Index(name, idx, _) => {
            out.push(name.clone());
            expr_uses(idx, out);
        }
        Expr::Unary(_, inner, _) => expr_uses(inner, out),
        Expr::Binary(_, a, b, _) => {
            expr_uses(a, out);
            expr_uses(b, out);
        }
        Expr::Call(_, args, _) | Expr::UserCall(_, args, _) => {
            for a in args {
                expr_uses(a, out);
            }
        }
        Expr::Hole(_, args, _) => out.extend(args.iter().cloned()),
    }
}

impl Cfg {
    /// Builds the CFG of `program`'s main body.
    pub fn build(program: &Program) -> Cfg {
        let mut cfg = Cfg {
            nodes: vec![
                CfgNode::new(NodeKind::Entry, Span::default()),
                CfgNode::new(NodeKind::Exit, Span::default()),
            ],
            bug: None,
            hole: None,
            assume: BTreeMap::new(),
        };
        let open = cfg.lower_block(&program.body, vec![ENTRY]);
        // Falling off the end of the program is a normal exit.
        for p in open {
            cfg.edge(p, EXIT);
        }
        cfg
    }

    /// The synthetic entry node id.
    pub fn entry(&self) -> NodeId {
        ENTRY
    }

    /// The synthetic exit node id.
    pub fn exit(&self) -> NodeId {
        EXIT
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[CfgNode] {
        &self.nodes
    }

    /// The node of the (first) `bug` statement, if any.
    pub fn bug_node(&self) -> Option<NodeId> {
        self.bug
    }

    /// The node of the statement containing the patch hole, if any.
    pub fn hole_node(&self) -> Option<NodeId> {
        self.hole
    }

    /// The path assumption an edge carries: `Some(true)` when traversing
    /// `from → to` asserts `from`'s condition, `Some(false)` when it asserts
    /// the negation, `None` for plain control flow.
    ///
    /// Only edges into a *materialised* arm are annotated: the fallthrough
    /// edge of an `if` with no `else` block and a loop's exit edge join the
    /// continuation directly, so their false-assumption is implicit. This is
    /// the edge contract the zone interpreter's branch refinement mirrors
    /// (it constrains the DBM on both arms, including the implicit ones).
    pub fn assume_edge(&self, from: NodeId, to: NodeId) -> Option<bool> {
        self.assume.get(&(from, to)).copied()
    }

    /// Per-node reachability from the entry node.
    pub fn reachable(&self) -> Vec<bool> {
        self.reachable_from(ENTRY)
    }

    /// Per-node reachability from an arbitrary node.
    pub fn reachable_from(&self, from: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut work = vec![from];
        seen[from] = true;
        while let Some(n) = work.pop() {
            for &s in &self.nodes[n].succs {
                if !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        seen
    }

    /// Whether `to` is reachable from `from` along CFG edges.
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.reachable_from(from)[to]
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
            self.nodes[to].preds.push(from);
        }
    }

    fn push(&mut self, kind: NodeKind, span: Span, preds: &[NodeId]) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(CfgNode::new(kind, span));
        for &p in preds {
            self.edge(p, id);
        }
        id
    }

    /// Lowers a block given the open ends of its predecessors; returns the
    /// open ends falling through to whatever follows the block.
    fn lower_block(&mut self, stmts: &[Stmt], mut open: Vec<NodeId>) -> Vec<NodeId> {
        for stmt in stmts {
            open = self.lower_stmt(stmt, open);
        }
        open
    }

    fn lower_stmt(&mut self, stmt: &Stmt, open: Vec<NodeId>) -> Vec<NodeId> {
        match stmt {
            Stmt::Decl {
                name, init, span, ..
            } => {
                let id = self.push(NodeKind::Decl, *span, &open);
                self.nodes[id].defs.push(name.clone());
                if let Some(e) = init {
                    expr_uses(e, &mut self.nodes[id].uses);
                    self.nodes[id].has_hole = e.contains_hole();
                }
                self.note_hole(id);
                vec![id]
            }
            Stmt::Assign { name, value, span } => {
                let id = self.push(NodeKind::Assign, *span, &open);
                self.nodes[id].defs.push(name.clone());
                expr_uses(value, &mut self.nodes[id].uses);
                self.nodes[id].has_hole = value.contains_hole();
                self.note_hole(id);
                vec![id]
            }
            Stmt::AssignIndex {
                name,
                index,
                value,
                span,
            } => {
                let id = self.push(NodeKind::AssignIndex, *span, &open);
                // A weak update: the array is both used and defined.
                self.nodes[id].defs.push(name.clone());
                self.nodes[id].uses.push(name.clone());
                expr_uses(index, &mut self.nodes[id].uses);
                expr_uses(value, &mut self.nodes[id].uses);
                self.nodes[id].has_hole = index.contains_hole() || value.contains_hole();
                self.note_hole(id);
                vec![id]
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                let id = self.push(NodeKind::Branch, *span, &open);
                expr_uses(cond, &mut self.nodes[id].uses);
                self.nodes[id].has_hole = cond.contains_hole();
                self.note_hole(id);
                let then_entry = self.nodes.len();
                let mut out = self.lower_block(then_body, vec![id]);
                if !then_body.is_empty() {
                    self.assume.insert((id, then_entry), true);
                }
                if else_body.is_empty() {
                    out.push(id);
                } else {
                    let else_entry = self.nodes.len();
                    out.extend(self.lower_block(else_body, vec![id]));
                    self.assume.insert((id, else_entry), false);
                }
                out
            }
            Stmt::While { cond, body, span } => {
                let id = self.push(NodeKind::LoopHead, *span, &open);
                expr_uses(cond, &mut self.nodes[id].uses);
                self.nodes[id].has_hole = cond.contains_hole();
                self.note_hole(id);
                let body_entry = self.nodes.len();
                let back = self.lower_block(body, vec![id]);
                if !body.is_empty() {
                    self.assume.insert((id, body_entry), true);
                }
                for p in back {
                    self.edge(p, id);
                }
                vec![id]
            }
            Stmt::Return { value, span } => {
                let id = self.push(NodeKind::Return, *span, &open);
                expr_uses(value, &mut self.nodes[id].uses);
                self.nodes[id].has_hole = value.contains_hole();
                self.note_hole(id);
                self.edge(id, EXIT);
                Vec::new()
            }
            Stmt::Assert { cond, span } => {
                let id = self.push(NodeKind::Assert, *span, &open);
                expr_uses(cond, &mut self.nodes[id].uses);
                self.nodes[id].has_hole = cond.contains_hole();
                self.note_hole(id);
                // A failing assert stops the program.
                self.edge(id, EXIT);
                vec![id]
            }
            Stmt::Assume { cond, span } => {
                let id = self.push(NodeKind::Assume, *span, &open);
                expr_uses(cond, &mut self.nodes[id].uses);
                self.nodes[id].has_hole = cond.contains_hole();
                self.note_hole(id);
                // A failing assume silently stops the path.
                self.edge(id, EXIT);
                vec![id]
            }
            Stmt::Bug { spec, span, .. } => {
                let id = self.push(NodeKind::Bug, *span, &open);
                expr_uses(spec, &mut self.nodes[id].uses);
                self.nodes[id].has_hole = spec.contains_hole();
                self.note_hole(id);
                if self.bug.is_none() {
                    self.bug = Some(id);
                }
                // A violated spec stops the program.
                self.edge(id, EXIT);
                vec![id]
            }
        }
    }

    fn note_hole(&mut self, id: NodeId) {
        if self.hole.is_none() && self.nodes[id].has_hole {
            self.hole = Some(id);
        }
    }
}

const ENTRY: NodeId = 0;
const EXIT: NodeId = 1;

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_lang::{check, parse};

    fn cfg_of(src: &str) -> Cfg {
        let program = parse(src).unwrap();
        check(&program).unwrap();
        Cfg::build(&program)
    }

    #[test]
    fn straight_line_chains_entry_to_exit() {
        let cfg = cfg_of("program p { var x: int = 1; x = x + 1; return x; }");
        assert_eq!(cfg.nodes().len(), 5);
        assert!(cfg.reachable().iter().all(|&r| r));
        assert!(cfg.reaches(cfg.entry(), cfg.exit()));
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let cfg = cfg_of("program p { return 1; var x: int = 2; return x; }");
        let reach = cfg.reachable();
        let dead: Vec<_> = cfg
            .nodes()
            .iter()
            .enumerate()
            .filter(|(i, _)| !reach[*i])
            .map(|(_, n)| n.kind)
            .collect();
        assert_eq!(dead, vec![NodeKind::Decl, NodeKind::Return]);
    }

    #[test]
    fn branches_rejoin_and_loops_have_back_edges() {
        let cfg = cfg_of(
            "program p {
               input x in [0, 8];
               var s: int = 0;
               var i: int = 0;
               while (i < x) { s = s + i; i = i + 1; }
               if (s > 3) { s = 3; } else { s = 0 - s; }
               return s;
             }",
        );
        assert!(cfg.reachable().iter().all(|&r| r));
        let loop_head = cfg
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::LoopHead)
            .unwrap();
        // The last body statement loops back to the head.
        assert!(cfg.nodes()[loop_head]
            .preds
            .iter()
            .any(|&p| cfg.nodes()[p].kind == NodeKind::Assign));
        let branch = cfg
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::Branch)
            .unwrap();
        assert_eq!(cfg.nodes()[branch].succs.len(), 2);
    }

    #[test]
    fn bug_and_hole_nodes_are_found_with_defs_and_uses() {
        let cfg = cfg_of(
            "program p {
               input x in [-10, 10];
               var y: int = 0;
               if (__patch_cond__(x)) { return 0; }
               y = x * 2;
               bug div_by_zero requires (y != 0);
               return 100 / y;
             }",
        );
        let hole = cfg.hole_node().unwrap();
        assert_eq!(cfg.nodes()[hole].kind, NodeKind::Branch);
        assert_eq!(cfg.nodes()[hole].uses, vec!["x".to_owned()]);
        let bug = cfg.bug_node().unwrap();
        assert_eq!(cfg.nodes()[bug].kind, NodeKind::Bug);
        assert_eq!(cfg.nodes()[bug].uses, vec!["y".to_owned()]);
        assert!(cfg.reaches(hole, bug));
        let assign = cfg
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Assign)
            .unwrap();
        assert_eq!(assign.defs, vec!["y".to_owned()]);
        assert_eq!(assign.uses, vec!["x".to_owned()]);
    }

    #[test]
    fn assume_edges_annotate_branch_arms_and_loop_bodies() {
        let cfg = cfg_of(
            "program p {
               input x in [0, 8];
               var s: int = 0;
               if (x > 3) { s = 1; } else { s = 2; }
               while (s > 0) { s = s - 1; }
               return s;
             }",
        );
        let branch = cfg
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::Branch)
            .unwrap();
        let arms: Vec<Option<bool>> = cfg.nodes()[branch]
            .succs
            .iter()
            .map(|&s| cfg.assume_edge(branch, s))
            .collect();
        assert!(arms.contains(&Some(true)));
        assert!(arms.contains(&Some(false)));

        let head = cfg
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::LoopHead)
            .unwrap();
        let body_edges: Vec<Option<bool>> = cfg.nodes()[head]
            .succs
            .iter()
            .map(|&s| cfg.assume_edge(head, s))
            .collect();
        // The body-entry edge assumes the condition; the exit edge's false
        // assumption is implicit (no annotation).
        assert!(body_edges.contains(&Some(true)));
        assert!(body_edges.iter().any(|p| p.is_none()));

        // Plain sequential edges carry no assumption.
        assert_eq!(cfg.assume_edge(cfg.entry(), 2), None);
    }

    #[test]
    fn bug_guarded_by_a_branch_is_still_cfg_reachable() {
        // CFG reachability is control-flow only; value-based unreachability
        // is the abstract interpreter's job.
        let cfg = cfg_of(
            "program p {
               input x in [0, 5];
               if (x > 100) { bug never requires (x < 0); }
               return x;
             }",
        );
        assert!(cfg.reachable()[cfg.bug_node().unwrap()]);
    }
}
