//! Interval abstract interpretation of subject programs.
//!
//! The abstract domain is [`cpr_smt::interval::Interval`] — the same domain
//! the branch-and-prune solver contracts over — lifted to program states:
//! scalars map to an interval, booleans to a three-valued [`AbsBool`], and
//! arrays to a single element-summary interval (arrays start zeroed, and
//! element writes *hull* the written value into the summary, so the summary
//! always over-approximates every element).
//!
//! The interpreter is a standard AST-directed forward analysis with branch
//! refinement (conditions contract variable intervals on each arm, mirroring
//! the solver's HC4 contractors) and loop widening: loops run a few exact
//! rounds, then bounds that still move are widened to the domain's clamping
//! bounds and the loop is re-run to a fixpoint.
//!
//! Everything here **over-approximates** reachability: a condition is only
//! reported [`AbsBool::True`]/[`AbsBool::False`] when every concrete
//! execution agrees, and `bug_reached == false` implies no concrete run can
//! reach the bug location. That is the soundness direction `cpr-lint` needs
//! for its `constant-condition` and `unreachable-bug` diagnostics.

use std::collections::BTreeMap;

use cpr_lang::{BinOp, Builtin, Expr, Program, Span, Stmt, Type, UnOp};
use cpr_smt::interval::Interval;

/// Three-valued abstract boolean (Kleene logic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsBool {
    /// Definitely true in every concrete execution reaching this point.
    True,
    /// Definitely false in every concrete execution reaching this point.
    False,
    /// May be either.
    Unknown,
}

impl AbsBool {
    /// Abstracts a concrete boolean.
    pub fn from_bool(b: bool) -> AbsBool {
        if b {
            AbsBool::True
        } else {
            AbsBool::False
        }
    }

    /// Kleene conjunction.
    pub fn and(self, other: AbsBool) -> AbsBool {
        match (self, other) {
            (AbsBool::False, _) | (_, AbsBool::False) => AbsBool::False,
            (AbsBool::True, AbsBool::True) => AbsBool::True,
            _ => AbsBool::Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: AbsBool) -> AbsBool {
        match (self, other) {
            (AbsBool::True, _) | (_, AbsBool::True) => AbsBool::True,
            (AbsBool::False, AbsBool::False) => AbsBool::False,
            _ => AbsBool::Unknown,
        }
    }

    /// Least upper bound: equal verdicts stay, different ones go unknown.
    pub fn join(self, other: AbsBool) -> AbsBool {
        if self == other {
            self
        } else {
            AbsBool::Unknown
        }
    }
}

/// Kleene negation.
impl std::ops::Not for AbsBool {
    type Output = AbsBool;

    fn not(self) -> AbsBool {
        match self {
            AbsBool::True => AbsBool::False,
            AbsBool::False => AbsBool::True,
            AbsBool::Unknown => AbsBool::Unknown,
        }
    }
}

/// An abstract value: scalar interval, three-valued boolean, or array
/// element summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Integer scalar.
    Int(Interval),
    /// Boolean scalar.
    Bool(AbsBool),
    /// Array: one interval over-approximating every element.
    Array(Interval),
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(a.hull(b)),
            (AbsVal::Bool(a), AbsVal::Bool(b)) => AbsVal::Bool(a.join(b)),
            (AbsVal::Array(a), AbsVal::Array(b)) => AbsVal::Array(a.hull(b)),
            // Type confusion cannot happen post-`check`; stay sound anyway.
            _ => AbsVal::Int(Interval::TOP),
        }
    }

    fn widen(self, next: AbsVal) -> AbsVal {
        match (self, next) {
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(widen_interval(a, b)),
            (AbsVal::Array(a), AbsVal::Array(b)) => AbsVal::Array(widen_interval(a, b)),
            (a, b) => a.join(b),
        }
    }

    fn narrow(self, next: AbsVal) -> AbsVal {
        match (self, next) {
            (AbsVal::Int(a), AbsVal::Int(b)) => AbsVal::Int(narrow_interval(a, b)),
            (AbsVal::Array(a), AbsVal::Array(b)) => AbsVal::Array(narrow_interval(a, b)),
            (a, _) => a,
        }
    }
}

pub(crate) fn widen_interval(cur: Interval, next: Interval) -> Interval {
    let lo = if next.lo() < cur.lo() {
        Interval::MIN_BOUND
    } else {
        cur.lo()
    };
    let hi = if next.hi() > cur.hi() {
        Interval::MAX_BOUND
    } else {
        cur.hi()
    };
    Interval::of(lo, hi)
}

/// Narrowing: only endpoints the widening pushed to the clamping bounds are
/// pulled back to `next`'s (still sound) endpoint.
pub(crate) fn narrow_interval(cur: Interval, next: Interval) -> Interval {
    let lo = if cur.lo() == Interval::MIN_BOUND {
        next.lo()
    } else {
        cur.lo()
    };
    let hi = if cur.hi() == Interval::MAX_BOUND {
        next.hi()
    } else {
        cur.hi()
    };
    Interval::of(lo.min(hi), lo.max(hi))
}

/// An abstract program state: every visible variable's abstract value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    env: BTreeMap<String, AbsVal>,
}

impl AbsState {
    /// Looks a variable up (TOP integer when absent, which cannot happen on
    /// type-checked programs).
    pub fn get(&self, name: &str) -> AbsVal {
        self.env
            .get(name)
            .copied()
            .unwrap_or(AbsVal::Int(Interval::TOP))
    }

    fn set(&mut self, name: &str, v: AbsVal) {
        self.env.insert(name.to_owned(), v);
    }

    fn join(&self, other: &AbsState) -> AbsState {
        let mut env = self.env.clone();
        for (k, v) in &other.env {
            let merged = match env.get(k) {
                Some(cur) => cur.join(*v),
                None => *v,
            };
            env.insert(k.clone(), merged);
        }
        AbsState { env }
    }

    fn widen(&self, next: &AbsState) -> AbsState {
        let mut env = self.env.clone();
        for (k, v) in &next.env {
            let merged = match env.get(k) {
                Some(cur) => cur.widen(*v),
                None => *v,
            };
            env.insert(k.clone(), merged);
        }
        AbsState { env }
    }

    fn narrow(&self, next: &AbsState) -> AbsState {
        let mut env = self.env.clone();
        for (k, v) in &next.env {
            if let Some(cur) = env.get(k) {
                env.insert(k.clone(), cur.narrow(*v));
            }
        }
        AbsState { env }
    }
}

fn join_opt(a: Option<AbsState>, b: Option<AbsState>) -> Option<AbsState> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.join(&b)),
        (Some(a), None) => Some(a),
        (None, b) => b,
    }
}

/// Result of abstractly interpreting a program.
#[derive(Debug, Clone)]
pub struct AbsSummary {
    /// Joined verdict of every *visited* `if`/`while` condition, keyed and
    /// ordered by source span. Conditions in code the analysis never reaches
    /// do not appear.
    pub cond_verdicts: BTreeMap<(usize, usize), AbsBool>,
    /// Whether any abstract execution reaches the bug location. `false` is a
    /// proof that no concrete execution reaches it.
    pub bug_reached: bool,
    /// Joined verdict of the bug specification over all visits (when
    /// reached).
    pub bug_spec: Option<AbsBool>,
    /// Abstract state joined over every path reaching the bug location.
    pub bug_state: Option<AbsState>,
}

/// Maximum loop-analysis rounds; widening kicks in well before this.
const MAX_LOOP_ROUNDS: usize = 16;
/// Exact rounds before bounds that still move are widened.
const WIDEN_AFTER: usize = 3;
/// Bounded narrowing rounds after the widened state stabilises.
const NARROW_ROUNDS: usize = 2;

struct AbsInterp {
    cond_verdicts: BTreeMap<(usize, usize), AbsBool>,
    bug_reached: bool,
    bug_spec: Option<AbsBool>,
    bug_state: Option<AbsState>,
}

/// Abstractly interprets `program` from its declared input ranges.
pub fn analyze(program: &Program) -> AbsSummary {
    let mut interp = AbsInterp {
        cond_verdicts: BTreeMap::new(),
        bug_reached: false,
        bug_spec: None,
        bug_state: None,
    };
    let mut env = BTreeMap::new();
    for input in &program.inputs {
        env.insert(
            input.name.clone(),
            AbsVal::Int(Interval::of(input.lo, input.hi)),
        );
    }
    let state = AbsState { env };
    interp.exec_block(&program.body, Some(state));
    AbsSummary {
        cond_verdicts: interp.cond_verdicts,
        bug_reached: interp.bug_reached,
        bug_spec: interp.bug_spec,
        bug_state: interp.bug_state,
    }
}

impl AbsInterp {
    fn record(&mut self, span: Span, verdict: AbsBool) {
        let key = (span.start, span.end);
        let joined = match self.cond_verdicts.get(&key) {
            Some(prev) => prev.join(verdict),
            None => verdict,
        };
        self.cond_verdicts.insert(key, joined);
    }

    fn exec_block(&mut self, stmts: &[Stmt], mut state: Option<AbsState>) -> Option<AbsState> {
        for stmt in stmts {
            let s = state?;
            state = self.exec_stmt(stmt, s);
        }
        state
    }

    fn exec_stmt(&mut self, stmt: &Stmt, mut state: AbsState) -> Option<AbsState> {
        match stmt {
            Stmt::Decl { name, ty, init, .. } => {
                let v = match (ty, init) {
                    (Type::IntArray(_), _) => AbsVal::Array(Interval::point(0)),
                    (_, Some(e)) => eval(&state, e),
                    (Type::Int, None) => AbsVal::Int(Interval::point(0)),
                    (Type::Bool, None) => AbsVal::Bool(AbsBool::False),
                };
                state.set(name, v);
                Some(state)
            }
            Stmt::Assign { name, value, .. } => {
                let v = eval(&state, value);
                state.set(name, v);
                Some(state)
            }
            Stmt::AssignIndex {
                name, index, value, ..
            } => {
                // Weak update on the element summary; the index is evaluated
                // only for its (ignored) crash potential — out-of-bounds
                // paths stop, and keeping them is the over-approximation.
                let _ = eval(&state, index);
                let v = match eval(&state, value) {
                    AbsVal::Int(i) => i,
                    _ => Interval::TOP,
                };
                let summary = match state.get(name) {
                    AbsVal::Array(s) => s.hull(v),
                    _ => Interval::TOP,
                };
                state.set(name, AbsVal::Array(summary));
                Some(state)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let verdict = eval_bool(&state, cond);
                self.record(cond.span(), verdict);
                let then_in = if verdict == AbsBool::False {
                    None
                } else {
                    refine(state.clone(), cond, true)
                };
                let else_in = if verdict == AbsBool::True {
                    None
                } else {
                    refine(state.clone(), cond, false)
                };
                let then_out = then_in.and_then(|s| self.exec_block(then_body, Some(s)));
                let else_out = else_in.and_then(|s| self.exec_block(else_body, Some(s)));
                join_opt(then_out, else_out)
            }
            Stmt::While { cond, body, .. } => {
                let entry = state.clone();
                let mut cur = state;
                let mut exits: Option<AbsState> = None;
                let mut converged = false;
                for round in 0..MAX_LOOP_ROUNDS {
                    let verdict = eval_bool(&cur, cond);
                    self.record(cond.span(), verdict);
                    exits = join_opt(exits, refine(cur.clone(), cond, false));
                    if verdict == AbsBool::False {
                        return exits;
                    }
                    let body_in = match refine(cur.clone(), cond, true) {
                        Some(s) => s,
                        None => return exits,
                    };
                    let body_out = match self.exec_block(body, Some(body_in)) {
                        Some(s) => s,
                        // Every iteration path returns/stops: the loop never
                        // falls through on its own.
                        None => return exits,
                    };
                    let next = cur.join(&body_out);
                    if next == cur {
                        converged = true;
                        break;
                    }
                    cur = if round >= WIDEN_AFTER {
                        cur.widen(&next)
                    } else {
                        next
                    };
                }
                if !converged {
                    // Round budget exhausted without a proven invariant: the
                    // accumulated exit join is the only sound answer.
                    return join_opt(exits, refine(cur, cond, false));
                }
                // `cur` is an invariant. Bounded narrowing pulls endpoints
                // the widening pushed to the clamping bounds back to the
                // recomputed post-state, which is itself an invariant
                // (entry ⊔ F(cur) for cur ⊇ lfp stays ⊇ lfp).
                for _ in 0..NARROW_ROUNDS {
                    let body_in = match refine(cur.clone(), cond, true) {
                        Some(s) => s,
                        None => break,
                    };
                    let body_out = match self.exec_block(body, Some(body_in)) {
                        Some(s) => s,
                        None => break,
                    };
                    let next = entry.join(&body_out);
                    let narrowed = cur.narrow(&next);
                    if narrowed == cur {
                        break;
                    }
                    cur = narrowed;
                }
                // The invariant subsumes every reachable head state, so its
                // false refinement replaces the round-by-round exit join.
                refine(cur, cond, false)
            }
            Stmt::Return { value, .. } => {
                let _ = eval(&state, value);
                None
            }
            Stmt::Assert { cond, .. } | Stmt::Assume { cond, .. } => {
                // Paths where the condition fails stop here; the fallthrough
                // state satisfies it.
                refine(state, cond, true)
            }
            Stmt::Bug { spec, .. } => {
                self.bug_reached = true;
                let verdict = eval_bool(&state, spec);
                self.bug_spec = Some(match self.bug_spec {
                    Some(prev) => prev.join(verdict),
                    None => verdict,
                });
                self.bug_state = join_opt(self.bug_state.take(), Some(state.clone()));
                // Violating the spec is the observable failure and stops the
                // program; the fallthrough state satisfies σ.
                refine(state, spec, true)
            }
        }
    }
}

/// Evaluates an expression in an abstract state.
pub fn eval(state: &AbsState, e: &Expr) -> AbsVal {
    match e {
        Expr::Int(v, _) => AbsVal::Int(Interval::point(*v)),
        Expr::Bool(b, _) => AbsVal::Bool(AbsBool::from_bool(*b)),
        Expr::Var(name, _) => state.get(name),
        Expr::Index(name, idx, _) => {
            let _ = eval(state, idx);
            match state.get(name) {
                AbsVal::Array(summary) => AbsVal::Int(summary),
                _ => AbsVal::Int(Interval::TOP),
            }
        }
        Expr::Unary(UnOp::Neg, inner, _) => AbsVal::Int(as_interval(eval(state, inner)).neg()),
        Expr::Unary(UnOp::Not, inner, _) => AbsVal::Bool(!as_bool(eval(state, inner))),
        Expr::Binary(op, a, b, _) => {
            if op.is_logical() {
                let (a, b) = (as_bool(eval(state, a)), as_bool(eval(state, b)));
                AbsVal::Bool(match op {
                    BinOp::And => a.and(b),
                    _ => a.or(b),
                })
            } else if op.is_comparison() {
                let (a, b) = (as_interval(eval(state, a)), as_interval(eval(state, b)));
                AbsVal::Bool(compare(*op, a, b))
            } else {
                let (a, b) = (as_interval(eval(state, a)), as_interval(eval(state, b)));
                AbsVal::Int(match op {
                    BinOp::Add => a.add(b),
                    BinOp::Sub => a.sub(b),
                    BinOp::Mul => a.mul(b),
                    // Total variants over-approximate the crashing cases.
                    BinOp::Div => a.div_total(b),
                    _ => a.rem_total(b),
                })
            }
        }
        Expr::Call(builtin, args, _) => {
            let vals: Vec<Interval> = args.iter().map(|a| as_interval(eval(state, a))).collect();
            AbsVal::Int(match builtin {
                Builtin::Min => Interval::of(
                    vals[0].lo().min(vals[1].lo()),
                    vals[0].hi().min(vals[1].hi()),
                ),
                Builtin::Max => Interval::of(
                    vals[0].lo().max(vals[1].lo()),
                    vals[0].hi().max(vals[1].hi()),
                ),
                Builtin::Abs => abs_interval(vals[0]),
                Builtin::Roundup => Interval::TOP,
            })
        }
        // User functions are pure but unbounded (recursion); stay TOP.
        Expr::UserCall(_, args, _) => {
            for a in args {
                let _ = eval(state, a);
            }
            AbsVal::Int(Interval::TOP)
        }
        Expr::Hole(kind, _, _) => match kind {
            cpr_lang::HoleKind::Cond => AbsVal::Bool(AbsBool::Unknown),
            cpr_lang::HoleKind::IntExpr => AbsVal::Int(Interval::TOP),
        },
    }
}

/// Evaluates a boolean expression to its three-valued verdict.
pub fn eval_bool(state: &AbsState, e: &Expr) -> AbsBool {
    as_bool(eval(state, e))
}

pub(crate) fn as_interval(v: AbsVal) -> Interval {
    match v {
        AbsVal::Int(i) | AbsVal::Array(i) => i,
        AbsVal::Bool(_) => Interval::of(0, 1),
    }
}

pub(crate) fn as_bool(v: AbsVal) -> AbsBool {
    match v {
        AbsVal::Bool(b) => b,
        _ => AbsBool::Unknown,
    }
}

pub(crate) fn abs_interval(a: Interval) -> Interval {
    if a.lo() >= 0 {
        a
    } else if a.hi() <= 0 {
        a.neg()
    } else {
        Interval::of(0, a.neg().hi().max(a.hi()))
    }
}

pub(crate) fn compare(op: BinOp, a: Interval, b: Interval) -> AbsBool {
    match op {
        BinOp::Lt => {
            if a.hi() < b.lo() {
                AbsBool::True
            } else if a.lo() >= b.hi() {
                AbsBool::False
            } else {
                AbsBool::Unknown
            }
        }
        BinOp::Le => {
            if a.hi() <= b.lo() {
                AbsBool::True
            } else if a.lo() > b.hi() {
                AbsBool::False
            } else {
                AbsBool::Unknown
            }
        }
        BinOp::Gt => compare(BinOp::Lt, b, a),
        BinOp::Ge => compare(BinOp::Le, b, a),
        BinOp::Eq => {
            if a.is_point() && b.is_point() && a.lo() == b.lo() {
                AbsBool::True
            } else if a.intersect(b).is_none() {
                AbsBool::False
            } else {
                AbsBool::Unknown
            }
        }
        BinOp::Ne => !compare(BinOp::Eq, a, b),
        _ => AbsBool::Unknown,
    }
}

/// Negates a comparison operator (for refining under a false polarity).
pub(crate) fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

/// Contracts `state` under the assumption that `cond` evaluates to
/// `polarity`. Returns `None` when the assumption is infeasible — the same
/// role the solver's HC4 contractors play, specialised to `var ⋈ expr`
/// patterns. Refinement never *loses* states: the result always contains
/// every concrete state of the input that satisfies the assumption.
pub fn refine(state: AbsState, cond: &Expr, polarity: bool) -> Option<AbsState> {
    match cond {
        Expr::Bool(b, _) => (*b == polarity).then_some(state),
        Expr::Var(name, _) => {
            let want = AbsBool::from_bool(polarity);
            match state.get(name) {
                AbsVal::Bool(cur) if cur == !want => None,
                AbsVal::Bool(_) => {
                    let mut s = state;
                    s.set(name, AbsVal::Bool(want));
                    Some(s)
                }
                _ => Some(state),
            }
        }
        Expr::Unary(UnOp::Not, inner, _) => refine(state, inner, !polarity),
        Expr::Binary(BinOp::And, a, b, _) if polarity => {
            refine(state, a, true).and_then(|s| refine(s, b, true))
        }
        Expr::Binary(BinOp::Or, a, b, _) if !polarity => {
            refine(state, a, false).and_then(|s| refine(s, b, false))
        }
        Expr::Binary(op, a, b, _) if op.is_comparison() => {
            let op = if polarity { *op } else { negate_cmp(*op) };
            let av = as_interval(eval(&state, a));
            let bv = as_interval(eval(&state, b));
            // Verdict check first: a definitely-contradicted comparison
            // makes the branch infeasible even when neither side is a
            // variable we can contract.
            if compare(op, av, bv) == AbsBool::False {
                return None;
            }
            let mut s = state;
            if let Expr::Var(name, _) = &**a {
                if matches!(s.get(name), AbsVal::Int(_)) {
                    let contracted = contract(op, av, bv, true)?;
                    s.set(name, AbsVal::Int(contracted));
                }
            }
            if let Expr::Var(name, _) = &**b {
                if matches!(s.get(name), AbsVal::Int(_)) {
                    let contracted = contract(op, bv, av, false)?;
                    s.set(name, AbsVal::Int(contracted));
                }
            }
            Some(s)
        }
        _ => match eval_bool(&state, cond) {
            v if v == AbsBool::from_bool(!polarity) => None,
            _ => Some(state),
        },
    }
}

/// Contracts `this` under `this ⋈ other` (`lhs == true`) or
/// `other ⋈ this` (`lhs == false`).
fn contract(op: BinOp, this: Interval, other: Interval, lhs: bool) -> Option<Interval> {
    let op = if lhs {
        op
    } else {
        // Flip sides: `other ⋈ this` becomes `this ⋈' other`.
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other_op => other_op,
        }
    };
    match op {
        BinOp::Lt => this.below_strict(other),
        BinOp::Le => this.below(other),
        BinOp::Gt => this.above_strict(other),
        BinOp::Ge => this.above(other),
        BinOp::Eq => this.intersect(other),
        BinOp::Ne => {
            if other.is_point() {
                this.remove_endpoint(other.lo())
            } else {
                Some(this)
            }
        }
        _ => Some(this),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_lang::{check, parse};

    fn summary(src: &str) -> AbsSummary {
        let program = parse(src).unwrap();
        check(&program).unwrap();
        analyze(&program)
    }

    fn verdicts(s: &AbsSummary) -> Vec<AbsBool> {
        s.cond_verdicts.values().copied().collect()
    }

    #[test]
    fn constant_conditions_get_definite_verdicts() {
        let s = summary(
            "program p {
               input x in [0, 5];
               if (x > 100) { return 1; }
               if (x >= 0) { return 2; }
               return 3;
             }",
        );
        assert_eq!(verdicts(&s), vec![AbsBool::False, AbsBool::True]);
    }

    #[test]
    fn data_dependent_conditions_stay_unknown() {
        let s = summary(
            "program p {
               input x in [0, 5];
               if (x > 2) { return 1; }
               return 0;
             }",
        );
        assert_eq!(verdicts(&s), vec![AbsBool::Unknown]);
    }

    #[test]
    fn branch_refinement_narrows_variables() {
        let s = summary(
            "program p {
               input x in [0, 10];
               if (x > 5) {
                 if (x > 3) { return 1; }
               }
               return 0;
             }",
        );
        // Inside `x > 5`, the inner `x > 3` is definitely true (verdicts
        // are ordered by source span: outer first).
        assert_eq!(verdicts(&s), vec![AbsBool::Unknown, AbsBool::True]);
    }

    #[test]
    fn loops_widen_instead_of_diverging() {
        let s = summary(
            "program p {
               input n in [0, 8];
               var i: int = 0;
               var sum: int = 0;
               while (i < n) { sum = sum + i; i = i + 1; }
               bug overflow requires (sum >= 0);
               return sum;
             }",
        );
        // The loop condition is data-dependent; the bug is reached and its
        // spec cannot be decided after widening.
        assert_eq!(verdicts(&s), vec![AbsBool::Unknown]);
        assert!(s.bug_reached);
    }

    #[test]
    fn narrowing_keeps_bounded_loop_counters_finite() {
        // `i` is widened to MAX_BOUND while the loop stabilises; the
        // narrowing pass must pull it back to the bound the condition
        // implies, so the state after the loop keeps a finite range.
        let s = summary(
            "program p {
               input n in [0, 8];
               var i: int = 0;
               while (i < n) { i = i + 1; }
               bug b requires (i >= 0);
               return i;
             }",
        );
        assert!(s.bug_reached);
        assert_eq!(s.bug_spec, Some(AbsBool::True));
        let state = s.bug_state.as_ref().unwrap();
        match state.get("i") {
            AbsVal::Int(iv) => {
                assert!(iv.hi() <= 8, "widened bound survived narrowing: {iv:?}");
                assert!(iv.lo() >= 0);
            }
            other => panic!("unexpected abstract value {other:?}"),
        }
    }

    #[test]
    fn bug_behind_infeasible_guard_is_unreached() {
        let s = summary(
            "program p {
               input x in [0, 5];
               if (x < 0 - 200) { bug neg requires (x > 0); }
               return x;
             }",
        );
        assert!(!s.bug_reached);
        assert_eq!(s.bug_spec, None);
        assert_eq!(verdicts(&s), vec![AbsBool::False]);
    }

    #[test]
    fn bug_spec_verdict_uses_the_path_refined_state() {
        let s = summary(
            "program p {
               input x in [-10, 10];
               if (x > 0) { bug pos requires (x >= 1); }
               return x;
             }",
        );
        assert!(s.bug_reached);
        assert_eq!(s.bug_spec, Some(AbsBool::True));
    }

    #[test]
    fn arrays_are_summarised_and_stay_zero_inclusive() {
        let s = summary(
            "program p {
               input x in [3, 7];
               var a: int[4];
               a[0] = x;
               bug range requires (a[1] >= 0);
               return a[0];
             }",
        );
        // The summary is {0} ∪ [3,7]: the spec `a[1] >= 0` is definitely
        // true (all elements non-negative).
        assert_eq!(s.bug_spec, Some(AbsBool::True));
    }

    #[test]
    fn holes_are_opaque() {
        let s = summary(
            "program p {
               input x in [0, 5];
               if (__patch_cond__(x)) { return 1; }
               bug b requires (x >= 0);
               return 0;
             }",
        );
        assert_eq!(verdicts(&s), vec![AbsBool::Unknown]);
        assert!(s.bug_reached);
    }

    #[test]
    fn assume_and_assert_refine_the_fallthrough_state() {
        let s = summary(
            "program p {
               input x in [-10, 10];
               assume(x > 0);
               if (x >= 1) { return 1; }
               return 0;
             }",
        );
        assert_eq!(verdicts(&s), vec![AbsBool::True]);
    }

    #[test]
    fn infinite_loop_condition_is_reported_constant() {
        let s = summary(
            "program p {
               input x in [0, 5];
               var i: int = 0;
               while (x >= 0) { i = i + 1; }
               return i;
             }",
        );
        assert!(verdicts(&s).contains(&AbsBool::True));
    }

    #[test]
    fn division_is_total_in_the_abstract() {
        // `x / y` with y possibly zero must not crash the analysis.
        let s = summary(
            "program p {
               input x in [0, 5];
               input y in [0, 5];
               bug d requires (y != 0);
               return x / y;
             }",
        );
        assert!(s.bug_reached);
        assert_eq!(s.bug_spec, Some(AbsBool::Unknown));
    }
}
