//! The diagnostics pass behind the `cpr-lint` binary.
//!
//! Combines the front end (parse + type check) with the CFG, dataflow, and
//! abstract-interpretation analyses into a list of [`Diagnostic`]s with
//! machine-readable JSON rendering. Shipped subjects under `programs/` must
//! lint clean; the diagnostics exist to catch authoring mistakes in new
//! subjects before a repair run spends solver time on them.
//!
//! Diagnostic codes:
//!
//! * `parse-error` — the source does not lex/parse.
//! * `undefined-variable` — a name is used but never declared (from the
//!   type checker).
//! * `type-error` — any other type-check failure (mismatched types,
//!   re-declarations, bad hole arguments, …).
//! * `unreachable-code` — a statement no control-flow path can reach.
//! * `unreachable-bug` — the `bug` location is provably never executed
//!   (control-flow *or* value-based: a constant-false guard counts).
//! * `dead-variable` — a declared variable that is never read.
//! * `constant-condition` — an `if`/`while` condition that is the same on
//!   every visit (always true or always false).
//! * `possible-division-by-zero` — a `/` or `%` site whose divisor the zone
//!   analysis cannot prove nonzero on every reachable path.
//! * `possible-index-out-of-bounds` — an array read or write whose index is
//!   not provably within `[0, len)` (relational `idx - len$a` facts count).

use cpr_lang::{check, parse, LangError, Program, Span};

use crate::absint::{analyze, AbsBool};
use crate::cfg::{Cfg, NodeKind};
use crate::dataflow::dead_variables;
use crate::zones::analyze_zones;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (kebab-case).
    pub code: &'static str,
    /// Source span the finding points at.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Renders the diagnostic as one line of JSON, with `line`/`col`
    /// computed from `src` (1-based).
    pub fn to_json(&self, file: &str, src: &str) -> String {
        let (line, col) = line_col(src, self.span.start);
        format!(
            "{{\"file\":\"{}\",\"line\":{line},\"col\":{col},\"code\":\"{}\",\"message\":\"{}\"}}",
            escape(file),
            escape(self.code),
            escape(&self.message)
        )
    }
}

/// 1-based line/column of a byte offset in `src`.
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let mut line = 1;
    let mut col = 1;
    for (i, c) in src.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints source text: front-end errors become single diagnostics; programs
/// that pass `check` get the full static-analysis pass.
pub fn lint_source(src: &str) -> Vec<Diagnostic> {
    let program = match parse(src) {
        Ok(p) => p,
        Err(e) => return vec![front_end_diag(&e)],
    };
    if let Err(e) = check(&program) {
        return vec![front_end_diag(&e)];
    }
    lint_program(&program)
}

fn front_end_diag(e: &LangError) -> Diagnostic {
    let (code, message) = match e {
        LangError::Lex { message, .. } | LangError::Parse { message, .. } => {
            ("parse-error", message.clone())
        }
        LangError::Type { message, .. } => {
            if message.contains("undeclared") {
                ("undefined-variable", message.clone())
            } else {
                ("type-error", message.clone())
            }
        }
    };
    Diagnostic {
        code,
        span: e.span(),
        message,
    }
}

/// Lints a parsed, type-checked program.
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let cfg = Cfg::build(program);
    let reach = cfg.reachable();
    let mut bug_unreachable = false;

    for (id, node) in cfg.nodes().iter().enumerate() {
        if reach[id] || matches!(node.kind, NodeKind::Entry | NodeKind::Exit) {
            continue;
        }
        if node.kind == NodeKind::Bug {
            bug_unreachable = true;
        } else {
            out.push(Diagnostic {
                code: "unreachable-code",
                span: node.span,
                message: "statement is unreachable".to_owned(),
            });
        }
    }

    for (name, span) in dead_variables(program) {
        out.push(Diagnostic {
            code: "dead-variable",
            span,
            message: format!("variable `{name}` is declared but never read"),
        });
    }

    let summary = analyze(program);
    for (&(start, end), &verdict) in &summary.cond_verdicts {
        let value = match verdict {
            AbsBool::True => "true",
            AbsBool::False => "false",
            AbsBool::Unknown => continue,
        };
        out.push(Diagnostic {
            code: "constant-condition",
            span: Span::new(start, end),
            message: format!("condition is always {value}"),
        });
    }

    let zsummary = analyze_zones(program);
    for &span in &zsummary.possible_div_zero {
        out.push(Diagnostic {
            code: "possible-division-by-zero",
            span,
            message: "divisor may be zero on a reachable path".to_owned(),
        });
    }
    for (span, name, len) in &zsummary.possible_oob {
        out.push(Diagnostic {
            code: "possible-index-out-of-bounds",
            span: *span,
            message: format!("index into `{name}` may fall outside [0, {len})"),
        });
    }

    if program.bug().is_some() && (bug_unreachable || !summary.bug_reached) {
        let span = cfg
            .bug_node()
            .map(|id| cfg.nodes()[id].span)
            .unwrap_or_default();
        out.push(Diagnostic {
            code: "unreachable-bug",
            span,
            message: "bug location is unreachable: the defect can never be observed".to_owned(),
        });
    }

    out.sort_by_key(|d| (d.span.start, d.span.end, d.code));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        lint_source(src).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        assert!(codes(
            "program p {
               input x in [-10, 10];
               if (__patch_cond__(x)) { return 0; }
               bug div_by_zero requires (x != 0);
               return 100 / x;
             }"
        )
        .is_empty());
    }

    #[test]
    fn undefined_variable_is_flagged() {
        assert_eq!(
            codes("program p { return zz; }"),
            vec!["undefined-variable"]
        );
    }

    #[test]
    fn type_mismatch_is_flagged() {
        assert_eq!(
            codes("program p { var b: bool = true; return b + 1; }"),
            vec!["type-error"]
        );
    }

    #[test]
    fn parse_error_is_flagged() {
        assert_eq!(codes("program p { retur 1; }"), vec!["parse-error"]);
    }

    #[test]
    fn dead_code_and_dead_variables_are_flagged() {
        let diags = lint_source(
            "program p {
               input x in [0, 5];
               var unused: int = 3;
               return x;
               x = 7;
             }",
        );
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["dead-variable", "unreachable-code"]);
    }

    #[test]
    fn constant_false_guard_hides_the_bug() {
        let diags = lint_source(
            "program p {
               input x in [0, 5];
               if (x < 0 - 200) { bug neg requires (x > 0); }
               return x;
             }",
        );
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["constant-condition", "unreachable-bug"]);
    }

    #[test]
    fn cfg_unreachable_bug_is_flagged_once() {
        let diags = lint_source(
            "program p {
               input x in [0, 5];
               return x;
               bug late requires (x > 0);
             }",
        );
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["unreachable-bug"]);
    }

    #[test]
    fn unguarded_division_is_flagged_and_guarded_is_not() {
        assert_eq!(
            codes(
                "program p {
                   input x in [-10, 10];
                   return 100 / x;
                 }"
            ),
            vec!["possible-division-by-zero"]
        );
        // The `bug … requires (x != 0)` fallthrough proves the divisor.
        assert!(codes(
            "program p {
               input x in [-10, 10];
               bug d requires (x != 0);
               return 100 / x;
             }"
        )
        .is_empty());
    }

    #[test]
    fn unproven_index_is_flagged_and_relational_one_is_not() {
        let diags = lint_source(
            "program p {
               input i in [0, 10];
               var a: int[4];
               a[i] = 1;
               return a[0];
             }",
        );
        let found: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert_eq!(found, vec!["possible-index-out-of-bounds"]);

        // A loop counter bounded by a symbolic length is provably in
        // bounds only through the relational `i - len` fact.
        assert!(codes(
            "program p {
               input len in [1, 64];
               var a: int[64];
               var i: int = 0;
               while (i < len) { a[i] = i; i = i + 1; }
               return a[0];
             }"
        )
        .is_empty());
    }

    #[test]
    fn json_rendering_is_stable() {
        let src = "program p { return zz; }";
        let diags = lint_source(src);
        let json = diags[0].to_json("x.cpr", src);
        assert_eq!(
            json,
            "{\"file\":\"x.cpr\",\"line\":1,\"col\":20,\"code\":\"undefined-variable\",\
             \"message\":\"undeclared variable `zz`\"}"
        );
    }
}
