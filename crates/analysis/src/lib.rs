//! Static analyses for the CPR reproduction: everything that can be decided
//! about a subject program or a patch candidate *without* running the
//! concolic executor or the constraint solver.
//!
//! The crate has two customers:
//!
//! * **`cpr-lint`** (the [`lint`] pass over [`cfg`], [`dataflow`], and
//!   [`absint`]) — authoring-time diagnostics for `.cpr` subjects:
//!   undefined/dead variables, unreachable statements and bug locations,
//!   type mismatches, constant conditions. Shipped subjects must lint
//!   clean; CI enforces it.
//! * **`cpr-core`** (the [`screen`] module) — patch-space screening inside
//!   the repair loop. Screens are *under-approximations of solver
//!   refutation*: they only ever refute queries/candidates the solver (or
//!   validation) would itself refute, so switching them on cannot change a
//!   `RepairReport`, only skip solver work. The interval domain is shared
//!   with the solver ([`cpr_smt::Interval`]), so the abstract transfer
//!   functions here and the solver's contractors agree by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod certify;
pub mod cfg;
pub mod dataflow;
pub mod lint;
pub mod screen;
pub mod zones;

pub use absint::{analyze, AbsBool, AbsState, AbsSummary, AbsVal};
pub use cfg::{Cfg, CfgNode, NodeId, NodeKind};
pub use dataflow::{dead_variables, liveness, Liveness};
pub use lint::{lint_program, lint_source, Diagnostic};
pub use screen::{alpha_equivalent, screened_unsat, statically_unsat, ScreenDomain};
pub use zones::{analyze_zones, LoopHeadStats, Zone, ZoneSummary};
