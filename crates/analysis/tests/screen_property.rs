//! Property test for the screening hierarchy: on seeded random constraint
//! systems (the re-targeted partitions a repair run feeds the screen), the
//! zone screen refutes a superset of what the interval screen refutes, and
//! every screened verdict is re-checked UNSAT by the real solver — the
//! soundness oracle the certificate replay is supposed to guarantee.
//!
//! The generator is a hand-rolled LCG so the 64 cases are bit-reproducible
//! across platforms; no randomness crate is involved.

use cpr_analysis::{screened_unsat, ScreenDomain};
use cpr_smt::{Domains, Solver, SolverConfig, TermId, TermPool};

/// Deterministic 64-bit LCG (Knuth's MMIX multiplier).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// Uniform-ish draw from `[lo, hi]` (inclusive).
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % ((hi - lo + 1) as u64)) as i64
    }
}

/// One random comparison between `a` and `b + k` — the difference fragment
/// both the zone screen and the solver's root zone pass decompose.
fn diff_cmp(pool: &mut TermPool, rng: &mut Lcg, vars: &[TermId]) -> TermId {
    let a = vars[rng.range(0, vars.len() as i64 - 1) as usize];
    let b = vars[rng.range(0, vars.len() as i64 - 1) as usize];
    let k = pool.int(rng.range(-20, 20));
    let rhs = pool.add(b, k);
    match rng.range(0, 4) {
        0 => pool.le(a, rhs),
        1 => pool.lt(a, rhs),
        2 => pool.ge(a, rhs),
        3 => pool.gt(a, rhs),
        _ => pool.eq(a, rhs),
    }
}

/// One random constraint: a difference comparison, a unary bound, a
/// disjunction of two difference comparisons, or — outside both screens'
/// fragments — a nonlinear comparison, so the test also covers the
/// "screen must stay silent" path.
fn constraint(pool: &mut TermPool, rng: &mut Lcg, vars: &[TermId]) -> TermId {
    match rng.range(0, 9) {
        0..=3 => diff_cmp(pool, rng, vars),
        4..=5 => {
            let a = vars[rng.range(0, vars.len() as i64 - 1) as usize];
            let k = pool.int(rng.range(-120_000, 120_000));
            if rng.range(0, 1) == 0 {
                pool.le(a, k)
            } else {
                pool.ge(a, k)
            }
        }
        6..=7 => {
            let l = diff_cmp(pool, rng, vars);
            let r = diff_cmp(pool, rng, vars);
            pool.or(l, r)
        }
        _ => {
            let a = vars[rng.range(0, vars.len() as i64 - 1) as usize];
            let b = vars[rng.range(0, vars.len() as i64 - 1) as usize];
            let k = pool.int(rng.range(-50, 50));
            let ab = pool.mul(a, b);
            pool.le(ab, k)
        }
    }
}

#[test]
fn zone_screen_refutes_a_superset_and_never_lies() {
    let mut interval_refuted = 0usize;
    let mut zones_refuted = 0usize;
    for seed in 0..64u64 {
        let mut pool = TermPool::new();
        let mut domains = Domains::new();
        let vars: Vec<TermId> = ["x", "y", "z"]
            .iter()
            .map(|name| {
                let v = pool.var(name, cpr_smt::Sort::Int);
                // Wide boxes: narrow enough cycles stay out of reach of
                // iterated interval narrowing (which would close small
                // boxes by endpoint ping-pong), so the relational gap the
                // test asserts on is actually visible.
                domains.bound(v, -100_000, 100_000);
                pool.var_term(v)
            })
            .collect();
        let mut rng = Lcg(0x9E3779B97F4A7C15 ^ (seed.wrapping_mul(0xBF58476D1CE4E5B9)));
        let n = rng.range(3, 7) as usize;
        let query: Vec<TermId> = (0..n)
            .map(|_| constraint(&mut pool, &mut rng, &vars))
            .collect();

        let mut solver = Solver::new(SolverConfig::default());
        let iv = screened_unsat(&solver, &pool, &query, &domains, ScreenDomain::Interval);
        let zn = screened_unsat(&solver, &pool, &query, &domains, ScreenDomain::Zones);
        assert!(
            !screened_unsat(&solver, &pool, &query, &domains, ScreenDomain::Off),
            "seed {seed}: the off domain screened a query"
        );
        // Hierarchy: everything the interval screen refutes, the zone
        // screen refutes too (a zone certificate with no relational edges
        // degenerates to the interval one).
        assert!(
            !iv || zn,
            "seed {seed}: interval refuted a query the zone screen passed"
        );
        // Soundness oracle: a screened verdict must agree with the real
        // solver on the very same query.
        if zn {
            zones_refuted += 1;
            assert!(
                solver.check(&pool, &query, &domains).is_unsat(),
                "seed {seed}: the screen refuted a query the solver finds satisfiable"
            );
        }
        if iv {
            interval_refuted += 1;
        }
    }
    // Non-vacuity: the seeded corpus must actually exercise both screens,
    // and the zone screen must be strictly stronger somewhere.
    assert!(
        interval_refuted > 0,
        "no seeded query was interval-refutable"
    );
    assert!(
        zones_refuted > interval_refuted,
        "the zone screen never refuted beyond the interval screen \
         (zones {zones_refuted}, interval {interval_refuted})"
    );
}
