//! `cpr-lint` corpus tests: every seeded known-bad program under
//! `tests/corpus/` is flagged with the expected diagnostic, and every
//! shipped subject under `programs/` lints clean.

use std::path::{Path, PathBuf};

use cpr_analysis::lint::lint_source;

fn corpus(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn codes(src: &str) -> Vec<&'static str> {
    lint_source(src).into_iter().map(|d| d.code).collect()
}

#[test]
fn undefined_variable_program_is_flagged() {
    assert_eq!(codes(&corpus("undefined_var.cpr")), ["undefined-variable"]);
}

#[test]
fn bug_after_return_is_flagged_unreachable() {
    assert_eq!(codes(&corpus("unreachable_bug.cpr")), ["unreachable-bug"]);
}

#[test]
fn constant_false_guard_is_flagged_with_its_hidden_bug() {
    assert_eq!(
        codes(&corpus("constant_guard.cpr")),
        ["constant-condition", "unreachable-bug"]
    );
}

#[test]
fn dead_variable_program_is_flagged() {
    assert_eq!(codes(&corpus("dead_var.cpr")), ["dead-variable"]);
}

#[test]
fn corpus_diagnostics_are_machine_readable_json() {
    let src = corpus("undefined_var.cpr");
    for diag in lint_source(&src) {
        let json = diag.to_json("undefined_var.cpr", &src);
        // Hand-rolled check: balanced object with the expected keys.
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for key in [
            "\"file\":",
            "\"line\":",
            "\"col\":",
            "\"code\":",
            "\"message\":",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
    }
}

#[test]
fn shipped_subjects_lint_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "cpr"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no shipped subjects found");
    for file in files {
        let src = std::fs::read_to_string(&file).unwrap();
        let diags = lint_source(&src);
        assert!(
            diags.is_empty(),
            "{} should lint clean, got {diags:?}",
            file.display()
        );
    }
}
