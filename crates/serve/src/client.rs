//! A small blocking client for the JSON-lines protocol (used by the `cpr
//! submit` / `cpr jobs` subcommands, the smoke tests and the benchmark).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::json::{self, Json};
use crate::protocol::{JobSpec, Request};

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let writer = stream.try_clone().map_err(|e| format!("connect: {e}"))?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads one response. Protocol-level failures
    /// (`"ok": false`) become `Err` with the server's message.
    pub fn request(&mut self, req: &Request) -> Result<Json, String> {
        let mut line = req.to_line();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("receive: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        let v = json::parse(response.trim()).map_err(|e| format!("bad response: {e}"))?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => Err(v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error")
                .to_owned()),
            None => Err("response missing \"ok\"".into()),
        }
    }

    /// Submits a job; returns its id.
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64, String> {
        let v = self.request(&Request::Submit(spec))?;
        v.get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| "submit response missing job id".into())
    }

    /// One job's status object.
    pub fn status(&mut self, job: u64) -> Result<Json, String> {
        self.request(&Request::Status(Some(job)))
    }

    /// Every job's status objects.
    pub fn jobs(&mut self) -> Result<Vec<Json>, String> {
        let v = self.request(&Request::Status(None))?;
        match v.get("jobs") {
            Some(Json::Arr(items)) => Ok(items.clone()),
            _ => Err("status response missing jobs".into()),
        }
    }

    /// Cancels a job.
    pub fn cancel(&mut self, job: u64) -> Result<Json, String> {
        self.request(&Request::Cancel(job))
    }

    /// Pauses a job.
    pub fn pause(&mut self, job: u64) -> Result<Json, String> {
        self.request(&Request::Pause(job))
    }

    /// Resumes a paused or canceled job.
    pub fn resume(&mut self, job: u64) -> Result<Json, String> {
        self.request(&Request::Resume(job))
    }

    /// Streams an input into a live job (the continuous-repair verb);
    /// returns the job's total injection count.
    pub fn inject(&mut self, job: u64, input: &[(String, i64)]) -> Result<u64, String> {
        let v = self.request(&Request::Inject {
            job,
            input: input.to_vec(),
        })?;
        v.get("injections")
            .and_then(Json::as_u64)
            .ok_or_else(|| "inject response missing injections".into())
    }

    /// The final report of a completed job.
    pub fn report(&mut self, job: u64) -> Result<Json, String> {
        let v = self.request(&Request::Report(job))?;
        v.get("report")
            .cloned()
            .ok_or_else(|| "report response missing report".into())
    }

    /// Process-wide metrics and per-job observability tallies (the full
    /// `stats` response, including `stats_version`).
    pub fn stats(&mut self) -> Result<Json, String> {
        self.request(&Request::Stats)
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request(&Request::Shutdown).map(|_| ())
    }

    /// Polls `status` until the job's state leaves `queued`/`running` or
    /// the timeout elapses; returns the last status seen.
    pub fn wait_terminal(&mut self, job: u64, timeout: Duration) -> Result<Json, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(job)?;
            match status.get("state").and_then(Json::as_str) {
                Some("queued") | Some("running") => {}
                _ => return Ok(status),
            }
            if Instant::now() >= deadline {
                return Ok(status);
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}
