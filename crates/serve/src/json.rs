//! A minimal, dependency-free JSON value type with a strict parser and a
//! deterministic writer.
//!
//! The serve protocol is JSON *lines* — one complete value per `\n`
//! terminated line — so the parser here works on a full string and rejects
//! trailing garbage. Objects preserve insertion order (they are stored as
//! pair vectors, not maps), which keeps every serialized response
//! byte-stable; duplicate keys are rejected on parse.
//!
//! The subset is deliberately exact JSON (RFC 8259) minus one economy:
//! numbers are parsed as `i64` when they have no fraction/exponent and as
//! `f64` otherwise. Every counter the protocol ships is integral, so
//! protocol round trips never lose precision.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (a convenience for response
    /// construction).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks a key up in an object; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64` (integers only; floats are not coerced).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|i| usize::try_from(i).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes the value on one line (no insignificant whitespace).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Json::Float(f) => {
            // JSON has no NaN/Infinity; map them to null rather than emit
            // an unparsable token.
            if f.is_finite() {
                let _ = fmt::Write::write_fmt(out, format_args!("{f}"));
                // `{}` on a whole f64 prints no decimal point; keep the
                // float/int distinction through a round trip.
                if f.fract() == 0.0 && !out.ends_with(['e', '.']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Maximum nesting depth — a protocol message is flat, so anything deep is
/// hostile or corrupt input and gets a clean error instead of a stack
/// overflow.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected {")?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            self.eat(b':', "expected :")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid code point")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str so it is valid;
                    // find the char boundary and copy it through.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d as u32;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        // Leading zeros are invalid JSON ("007").
        if self.pos - digits_start > 1 && self.bytes[digits_start] == b'0' {
            return Err(self.err("leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Integral but out of i64 range still parses as a float, so a
            // huge counter degrades rather than errors.
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-7", "123456789012345"] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_line(), src);
        }
        assert_eq!(parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(Json::Float(2.0).to_line(), "2.0");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        let round = parse(&v.to_line()).unwrap();
        assert_eq!(round, v);
        // Surrogate pair.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1F600}")
        );
        // Raw UTF-8 passes through.
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn objects_preserve_order_and_reject_duplicates() {
        let v = parse(r#"{"b":1,"a":[2,{"c":true}]}"#).unwrap();
        assert_eq!(v.to_line(), r#"{"b":1,"a":[2,{"c":true}]}"#);
        assert_eq!(v.get("b").and_then(Json::as_i64), Some(1));
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn malformed_inputs_error_without_panic() {
        for src in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "[1,]",
            "{,}",
            "01",
            "1.",
            "1e",
            "tru",
            "\"\\q\"",
            "\"\\u12\"",
            "nullx",
            "[1] 2",
            "\u{1}",
            r#""\ud800""#,
        ] {
            assert!(parse(src).is_err(), "accepted {src:?}");
        }
        // Deep nesting errors cleanly instead of overflowing the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn accessors_are_typed() {
        let v = parse(r#"{"n":3,"s":"x","b":true,"f":1.5}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("f").unwrap().as_i64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }
}
