//! Connection-level buffering for the event loop (and the stdio server):
//! capped line framing over nonblocking reads, plus per-connection output
//! queues flushed as the socket accepts them.
//!
//! The framing layer is deliberately separate from the socket so the
//! request-size cap is one piece of code with one set of tests, shared by
//! the TCP event loop and `serve_lines` — both used to buffer a
//! newline-less line without bound, a memory-exhaustion vector.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::protocol::MAX_REQUEST_BYTES;

/// One framed unit out of a [`LineBuffer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Framed {
    /// A complete request line (newline stripped, lossy UTF-8).
    Line(String),
    /// The current line exceeded [`MAX_REQUEST_BYTES`]. Reported once;
    /// the buffer then discards until the offending line's newline so a
    /// line-oriented caller (stdio) can keep serving, while the TCP loop
    /// closes the connection after responding.
    TooLarge,
}

/// Incremental newline framing with a hard per-line byte cap.
#[derive(Debug, Default)]
pub(crate) struct LineBuffer {
    buf: Vec<u8>,
    /// Set after a cap overrun: incoming bytes are dropped until the next
    /// newline re-synchronizes the stream.
    discarding: bool,
}

impl LineBuffer {
    pub fn new() -> LineBuffer {
        LineBuffer::default()
    }

    /// Feeds raw bytes in. The buffer never holds more than the cap plus
    /// one read chunk: callers must interleave [`LineBuffer::next`] calls
    /// (which shed overruns) with pushes, as both servers do.
    pub fn push(&mut self, mut bytes: &[u8]) {
        if self.discarding {
            match bytes.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    // Overrun line ends here; resume normal framing after it.
                    self.discarding = false;
                    bytes = &bytes[nl + 1..];
                }
                None => return,
            }
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next framed unit, if any.
    pub fn next(&mut self) -> Option<Framed> {
        if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
            if nl <= MAX_REQUEST_BYTES {
                let line: Vec<u8> = self.buf.drain(..=nl).collect();
                return Some(Framed::Line(
                    String::from_utf8_lossy(&line[..nl]).into_owned(),
                ));
            }
            // A complete-but-oversized line: drop it whole.
            self.buf.drain(..=nl);
            return Some(Framed::TooLarge);
        }
        if self.buf.len() > MAX_REQUEST_BYTES {
            // Oversized with no newline in sight: drop what is buffered
            // and discard until the stream re-synchronizes.
            self.buf.clear();
            self.discarding = true;
            return Some(Framed::TooLarge);
        }
        None
    }

    /// Whether a complete line (or a cap overrun awaiting its error
    /// response) is buffered and ready — used by drain to decide if a
    /// connection still has in-flight requests.
    pub fn has_complete_line(&self) -> bool {
        self.buf.len() > MAX_REQUEST_BYTES || self.buf.contains(&b'\n')
    }

    /// Drains a trailing unterminated line at EOF (the stdio server
    /// accepts a final request without a newline, as `BufRead::lines`
    /// always did).
    pub fn take_partial(&mut self) -> Option<String> {
        if self.buf.is_empty() {
            return None;
        }
        let line = String::from_utf8_lossy(&self.buf).into_owned();
        self.buf.clear();
        Some(line)
    }
}

/// What a nonblocking read pass observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadStatus {
    /// Drained to `WouldBlock`; the connection stays open.
    Open,
    /// The peer closed its write side (read returned 0).
    Eof,
}

/// One client connection owned by the event loop: the socket, the capped
/// input framer, and an output queue with a flush cursor.
#[derive(Debug)]
pub(crate) struct Conn {
    stream: TcpStream,
    input: LineBuffer,
    output: Vec<u8>,
    flushed: usize,
    /// Close once the output queue flushes (EOF seen, request-too-large,
    /// or a drain-phase goodbye).
    pub close_after_flush: bool,
}

impl Conn {
    /// Wraps an accepted stream, switching it to nonblocking mode.
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            input: LineBuffer::new(),
            output: Vec::new(),
            flushed: 0,
            close_after_flush: false,
        })
    }

    /// The underlying socket (for epoll registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads until `WouldBlock` or EOF — the edge-triggered contract: one
    /// readiness edge is consumed completely or it is lost.
    pub fn fill(&mut self) -> io::Result<ReadStatus> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(ReadStatus::Eof),
                Ok(n) => self.input.push(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadStatus::Open),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// The next framed request, if a complete one is buffered.
    pub fn next_frame(&mut self) -> Option<Framed> {
        self.input.next()
    }

    /// Queues one response line (newline appended) for flushing.
    pub fn queue_line(&mut self, line: &str) {
        self.output.extend_from_slice(line.as_bytes());
        self.output.push(b'\n');
    }

    /// Writes queued output until empty or `WouldBlock`. Returns whether
    /// everything queued so far is on the wire.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.flushed < self.output.len() {
            match self.stream.write(&self.output[self.flushed..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted no bytes",
                    ))
                }
                Ok(n) => self.flushed += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.output.clear();
        self.flushed = 0;
        Ok(true)
    }

    /// Unflushed output bytes remain.
    pub fn wants_write(&self) -> bool {
        self.flushed < self.output.len()
    }

    /// In-flight work: a fully received request not yet answered, or an
    /// answer not yet on the wire. Graceful drain waits for this to clear.
    pub fn has_pending(&self) -> bool {
        self.wants_write() || self.input.has_complete_line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_split_across_pushes_reassemble() {
        let mut lb = LineBuffer::new();
        lb.push(b"{\"v\":1,\"cmd\"");
        assert_eq!(lb.next(), None);
        lb.push(b":\"status\"}\n{\"v\":1}\npartial");
        assert_eq!(
            lb.next(),
            Some(Framed::Line("{\"v\":1,\"cmd\":\"status\"}".into()))
        );
        assert_eq!(lb.next(), Some(Framed::Line("{\"v\":1}".into())));
        assert_eq!(lb.next(), None);
        assert!(!lb.has_complete_line());
        assert_eq!(lb.take_partial(), Some("partial".into()));
    }

    #[test]
    fn a_line_over_the_cap_without_newline_reports_once_and_resyncs() {
        let mut lb = LineBuffer::new();
        // Feed past the cap in chunks with no newline anywhere.
        let chunk = vec![b'x'; 8192];
        for _ in 0..(MAX_REQUEST_BYTES / chunk.len() + 2) {
            lb.push(&chunk);
        }
        assert!(lb.has_complete_line(), "overrun counts as pending work");
        assert_eq!(lb.next(), Some(Framed::TooLarge));
        assert_eq!(lb.next(), None, "reported once, not per chunk");
        // Everything until the overrun line's newline is discarded; the
        // next line frames normally.
        lb.push(b"tail of the huge line\nok\n");
        assert_eq!(lb.next(), Some(Framed::Line("ok".into())));
        assert_eq!(lb.next(), None);
    }

    #[test]
    fn a_complete_but_oversized_line_is_dropped_whole() {
        let mut lb = LineBuffer::new();
        let mut big = vec![b'y'; MAX_REQUEST_BYTES + 1];
        big.push(b'\n');
        big.extend_from_slice(b"next\n");
        lb.push(&big);
        assert_eq!(lb.next(), Some(Framed::TooLarge));
        assert_eq!(lb.next(), Some(Framed::Line("next".into())));
    }

    #[test]
    fn a_line_exactly_at_the_cap_passes() {
        let mut lb = LineBuffer::new();
        let mut line = vec![b'z'; MAX_REQUEST_BYTES];
        line.push(b'\n');
        lb.push(&line);
        match lb.next() {
            Some(Framed::Line(s)) => assert_eq!(s.len(), MAX_REQUEST_BYTES),
            other => panic!("expected a line at the cap, got {other:?}"),
        }
    }

    #[test]
    fn conn_round_trips_over_a_nonblocking_socket_pair() {
        use std::io::Write as _;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut conn = Conn::new(server).unwrap();

        client.write_all(b"hello\nwor").unwrap();
        // Give loopback a moment to deliver.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(conn.fill().unwrap(), ReadStatus::Open);
        assert_eq!(conn.next_frame(), Some(Framed::Line("hello".into())));
        assert_eq!(conn.next_frame(), None);

        conn.queue_line("reply");
        assert!(conn.wants_write());
        assert!(conn.flush().unwrap());
        assert!(!conn.has_pending());

        let mut buf = [0u8; 16];
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let n = std::io::Read::read(&mut client, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"reply\n");

        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(conn.fill().unwrap(), ReadStatus::Eof);
    }
}
