//! The sharded worker-pool scheduler.
//!
//! Jobs are repair runs over registry subjects, driven step-wise through
//! [`RepairDriver`] so the pool can checkpoint, pause, cancel and resume
//! them at step granularity. Ready jobs live in per-shard run queues, each
//! with its own mutex + condvar; a worker drains its home shard first and
//! steals from the others when idle, so the run queues scale with shard
//! count instead of serializing on one lock. The global `State` mutex
//! still exists, but it only guards the job table (the control plane:
//! status, cancel/pause flags, reports) — the hot submit/claim path takes
//! it for a table lookup, not for queueing. [`Scheduler::wait`] sleeps on
//! the global condvar, which every terminal state transition notifies.
//!
//! Queue entries are *lazy*: cancel and pause mark the job in the table
//! and leave the shard-queue entry behind; a worker claiming an entry
//! re-checks (under the global lock) that the job is still `Queued` before
//! running it, and skips stale entries. This keeps the control verbs free
//! of nested locking — no path ever holds a shard lock and the global
//! lock at once.
//!
//! # Admission control
//!
//! [`Scheduler::submit`] is bounded: past
//! [`SchedulerOptions::max_queued_jobs`] waiting jobs it refuses with a
//! typed [`ERR_OVERLOADED`] error instead of queueing without bound —
//! clients can distinguish "back off and retry" from a real failure.
//!
//! Control is cooperative: `cancel` and `pause` set a flag that the
//! running worker observes between driver steps, writes a durable snapshot
//! through the [`SnapshotStore`], and parks the job — so a canceled or
//! paused job can always be resumed later, bit-identically (the snapshot
//! differential test in `tests/determinism.rs` is the proof obligation;
//! its shard-count leg proves the same for 1-shard vs many-shard pools).
//! A parked job carries no shard affinity: `resume` re-enqueues it on the
//! least-loaded shard (and [`Scheduler::resume_on`] on an explicit one),
//! so drained or hot shards shed parked work to the others.
//! Per-job budgets ride on [`RepairConfig`]: iteration and wall-clock
//! limits end a run through the driver's own [`StopReason`], producing a
//! normal report.
//!
//! # Fault containment
//!
//! A panic inside one job must never take the pool down. Job execution is
//! wrapped in `catch_unwind` — a panicking `RepairDriver` marks *that* job
//! failed with the panic payload in its status — and every lock
//! acquisition recovers a poisoned guard with `PoisonError::into_inner`
//! (the shared state is a plain job table; there is no invariant a
//! mid-update panic could corrupt that a recovering reader would then
//! trip over, since all writes are field stores).

use std::collections::{BTreeMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cpr_core::{RepairConfig, RepairDriver, RepairProblem, StepStatus};
use cpr_obs::{Counter, Gauge, Histogram};
use cpr_smt::FleetCache;
use cpr_subjects::all_subjects;

use crate::json::Json;
use crate::protocol::{report_to_json, JobSpec, ServeError, ERR_OVERLOADED};
use crate::store::SnapshotStore;

/// Locks a mutex, recovering the guard if a previous holder panicked.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default checkpoint cadence (driver steps between durable snapshots)
/// when a spec does not set one.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 8;

/// Default bound on waiting (queued) jobs before `submit` answers with a
/// typed `overloaded` error.
pub const DEFAULT_MAX_QUEUED_JOBS: usize = 256;

/// How a [`Scheduler`] is shaped: worker count, shard count, and bounds.
#[derive(Debug, Clone)]
pub struct SchedulerOptions {
    /// Worker threads (at least 1).
    pub workers: usize,
    /// Run-queue shards. `0` means one shard per worker. Workers are
    /// assigned home shards round-robin; idle workers steal across shards,
    /// so any shard count is correct — it only tunes contention.
    pub shards: usize,
    /// Fleet solver-cache directory (see [`Scheduler::with_cache`]).
    pub cache_dir: Option<PathBuf>,
    /// Admission bound: `submit` refuses (typed `overloaded`) while this
    /// many jobs are already waiting for a worker.
    pub max_queued_jobs: usize,
}

impl Default for SchedulerOptions {
    fn default() -> SchedulerOptions {
        SchedulerOptions {
            workers: 1,
            shards: 0,
            cache_dir: None,
            max_queued_jobs: DEFAULT_MAX_QUEUED_JOBS,
        }
    }
}

/// The lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is stepping it.
    Running,
    /// Suspended on request; a snapshot is stored.
    Paused,
    /// Stopped on request; a snapshot is stored if it had started.
    Canceled,
    /// Finished; the report is available.
    Done,
    /// The run could not proceed (bad subject, unreadable snapshot, ...).
    Failed,
}

impl JobState {
    /// The protocol name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Canceled => "canceled",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job can never run again without a `resume`.
    fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Paused | JobState::Canceled | JobState::Done | JobState::Failed
        )
    }
}

/// A point-in-time public view of a job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// Subject name from the spec.
    pub subject: String,
    /// Current state.
    pub state: JobState,
    /// Repair-loop iterations completed so far.
    pub iterations: usize,
    /// Why the run stopped, for done jobs (`StopReason::name()`).
    pub stop_reason: Option<&'static str>,
    /// Failure message, for failed jobs.
    pub error: Option<String>,
}

impl JobStatus {
    /// The status as protocol JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("job", Json::Int(self.id as i64)),
            ("subject", Json::Str(self.subject.clone())),
            ("state", Json::Str(self.state.name().to_owned())),
            ("iterations", Json::Int(self.iterations as i64)),
            (
                "stop_reason",
                self.stop_reason
                    .map_or(Json::Null, |s| Json::Str(s.to_owned())),
            ),
            ("error", self.error.clone().map_or(Json::Null, Json::Str)),
        ])
    }
}

struct Job {
    spec: JobSpec,
    state: JobState,
    iterations: usize,
    stop_reason: Option<&'static str>,
    report: Option<Json>,
    error: Option<String>,
    cancel_requested: bool,
    pause_requested: bool,
    /// Inputs injected by clients but not yet applied to the driver. A
    /// running job's worker drains this between steps; a parked or queued
    /// job drains it right after the driver is (re)built. The buffer is
    /// in-memory only — injections delivered to a parked job are applied
    /// on resume within this process, not across a server restart.
    inbox: Vec<Vec<(String, i64)>>,
    /// When the job last entered the queue (submit or resume).
    queued_at: Instant,
    /// The shard the job was enqueued on (and, once claimed, the home
    /// shard of the worker running it — a steal updates this). Pure
    /// placement bookkeeping, surfaced through `stats`; never a repair
    /// input, which is how shard count stays determinism-neutral.
    shard: usize,
    /// Observability tallies, surfaced by the `stats` verb. They never
    /// feed back into scheduling or repair decisions.
    obs: JobObs,
}

/// Per-job observability tallies (all nanoseconds / bytes / counts).
#[derive(Debug, Clone, Copy, Default)]
struct JobObs {
    queue_wait_nanos: u64,
    steps: u64,
    step_nanos: u64,
    snapshots_written: u64,
    snapshot_bytes: u64,
    snapshot_fsync_nanos: u64,
    injections: u64,
}

impl JobObs {
    fn fields(self) -> Vec<(&'static str, Json)> {
        vec![
            (
                "queue_wait_nanos",
                Json::Int(clamp_i64(self.queue_wait_nanos)),
            ),
            ("steps", Json::Int(clamp_i64(self.steps))),
            ("step_nanos", Json::Int(clamp_i64(self.step_nanos))),
            (
                "snapshots_written",
                Json::Int(clamp_i64(self.snapshots_written)),
            ),
            ("snapshot_bytes", Json::Int(clamp_i64(self.snapshot_bytes))),
            (
                "snapshot_fsync_nanos",
                Json::Int(clamp_i64(self.snapshot_fsync_nanos)),
            ),
            ("injections", Json::Int(clamp_i64(self.injections))),
        ]
    }
}

fn clamp_i64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

/// Aggregate scheduler metrics, registered on the process-wide registry.
#[derive(Debug)]
struct ServeObs {
    queue_wait: Histogram,
    step: Histogram,
    snapshot_bytes: Histogram,
    snapshot_fsync: Histogram,
    jobs_submitted: Counter,
    jobs_done: Counter,
    jobs_failed: Counter,
    jobs_overloaded: Counter,
    snapshots_written: Counter,
    inject_accepted: Counter,
    inject_rejected: Counter,
    inject_applied: Counter,
    shard_steals: Counter,
    shard_rebalanced: Counter,
    queue_depth: Gauge,
    fleet_flushes: Counter,
    fleet_store_bytes: Gauge,
}

impl ServeObs {
    fn new(reg: &cpr_obs::MetricsRegistry) -> ServeObs {
        // The `fuzz.*` family rides along for the same reason as the
        // fleet metrics below: campaigns usually run client-side, but the
        // stats response promises the full documented metric set.
        cpr_fuzz::register_fuzz_metrics(reg);
        ServeObs {
            queue_wait: reg.histogram("serve.queue_wait_nanos"),
            step: reg.histogram("serve.step_nanos"),
            snapshot_bytes: reg.histogram("serve.snapshot_bytes"),
            snapshot_fsync: reg.histogram("serve.snapshot_fsync_nanos"),
            jobs_submitted: reg.counter("serve.jobs_submitted"),
            jobs_done: reg.counter("serve.jobs_done"),
            jobs_failed: reg.counter("serve.jobs_failed"),
            jobs_overloaded: reg.counter("serve.jobs_overloaded"),
            snapshots_written: reg.counter("serve.snapshots_written"),
            inject_accepted: reg.counter("serve.inject.accepted"),
            inject_rejected: reg.counter("serve.inject.rejected"),
            inject_applied: reg.counter("serve.inject.applied"),
            shard_steals: reg.counter("serve.shard.steals"),
            shard_rebalanced: reg.counter("serve.shard.rebalanced"),
            queue_depth: reg.gauge("serve.shard.queue_depth"),
            // Registered even when no fleet cache is configured, so the
            // stats verb (and the allowlist smoke test) always see the
            // names, at zero.
            fleet_flushes: reg.counter("solver.fleet.flushes"),
            fleet_store_bytes: reg.gauge("solver.fleet.store_bytes"),
        }
    }
}

/// One run-queue shard: its own lock and sleep channel, plus an idle
/// count so `submit` can route wakeups to a shard that will actually act
/// on them (its own workers first, else an idle stealer elsewhere).
struct Shard {
    queue: Mutex<VecDeque<u64>>,
    cv: Condvar,
    idle: AtomicUsize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            idle: AtomicUsize::new(0),
        }
    }
}

struct State {
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
    shutting_down: bool,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    shards: Vec<Shard>,
    max_queued_jobs: usize,
    store: SnapshotStore,
    obs: ServeObs,
    /// The fleet solver cache shared by every job, opened (and warm-loaded
    /// from disk) once at scheduler construction. `None` when the server
    /// runs without `--cache-dir`.
    fleet: Option<Arc<FleetCache>>,
    /// The directory the fleet cache lives in, propagated into each job's
    /// `SolverConfig` so its solver resolves the same shared instance.
    cache_dir: Option<PathBuf>,
}

impl Inner {
    /// Durably flushes the fleet cache (if any) and updates the flush
    /// counter and store-size gauge. Flush failures are deliberately
    /// swallowed: the cache is an accelerator, never a correctness
    /// dependency, so a full disk must not fail the job that triggered
    /// the flush.
    fn flush_fleet(&self) {
        if let Some(fleet) = &self.fleet {
            if let Ok(stats) = fleet.flush() {
                self.obs.fleet_flushes.inc();
                self.obs.fleet_store_bytes.set(clamp_i64(stats.store_bytes));
            }
        }
    }

    /// Jobs currently waiting for a worker (the admission-controlled
    /// quantity), counted from the job table — shard queues can hold
    /// stale entries and would overcount.
    fn queued_jobs(st: &State) -> usize {
        st.jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .count()
    }

    fn refresh_queue_depth(&self, st: &State) {
        self.obs
            .queue_depth
            .set(clamp_i64(Inner::queued_jobs(st) as u64));
    }

    /// The shard with the shortest run queue right now — where `submit`
    /// and `resume` place work. Stale entries inflate a length slightly,
    /// which only skews this heuristic, never correctness (stealing
    /// re-levels whatever placement gets wrong).
    fn least_loaded_shard(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| lock(&s.queue).len())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Pushes a queued job onto a shard and wakes a worker that can take
    /// it: the shard's own condvar always, plus one idle worker on
    /// another shard when this shard has none parked (that worker's steal
    /// pass will find the entry). Missed cross-shard wakeups are covered
    /// by the workers' bounded sleep.
    fn enqueue(&self, id: u64, shard: usize) {
        {
            let mut q = lock(&self.shards[shard].queue);
            q.push_back(id);
        }
        self.shards[shard].cv.notify_one();
        if self.shards[shard].idle.load(Ordering::SeqCst) == 0 {
            if let Some(s) = self
                .shards
                .iter()
                .enumerate()
                .find(|(i, s)| *i != shard && s.idle.load(Ordering::SeqCst) > 0)
            {
                s.1.cv.notify_one();
            }
        }
    }
}

/// The worker pool. Dropping it without calling [`Scheduler::shutdown`]
/// detaches the workers; `shutdown` checkpoints running jobs and joins
/// them.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Resolves a spec's subject against the registry.
pub fn job_problem(spec: &JobSpec) -> Result<RepairProblem, String> {
    let subjects = all_subjects();
    let s = subjects
        .iter()
        .find(|s| s.name() == spec.subject || s.bug_id == spec.subject)
        .ok_or_else(|| format!("unknown subject `{}`", spec.subject))?;
    if s.not_supported {
        return Err(format!(
            "subject `{}` is marked N/A (unsupported)",
            spec.subject
        ));
    }
    Ok(s.problem())
}

/// The repair configuration a spec denotes: the quick profile plus the
/// spec's budget and thread overrides. Centralized so a served job and a
/// direct [`cpr_core::repair`] call on the same spec are guaranteed to
/// agree (the benchmark and the smoke test compare them byte for byte).
pub fn job_config(spec: &JobSpec) -> RepairConfig {
    let mut config = RepairConfig::quick();
    if let Some(n) = spec.max_iterations {
        config.max_iterations = n;
    }
    if let Some(ms) = spec.time_budget_ms {
        config.max_millis = Some(ms);
    }
    if let Some(t) = spec.threads {
        config.threads = t;
    }
    config
}

impl Scheduler {
    /// Starts `workers` worker threads over a snapshot store, one shard
    /// per worker.
    ///
    /// Job ids are seeded past the highest id with a snapshot already in
    /// the store, so a fresh submit can never silently adopt a previous
    /// process's checkpoint — stale snapshots stay inert until a client
    /// claims one explicitly with [`JobSpec::resume_from`].
    pub fn new(workers: usize, store: SnapshotStore) -> Scheduler {
        Scheduler::with_cache(workers, store, None)
    }

    /// Like [`Scheduler::new`], but additionally opens the fleet solver
    /// cache at `cache_dir` (when given) and warm-loads its on-disk
    /// verdict/no-good store before the first job runs. Every job this
    /// scheduler executes shares the one in-process instance; checkpoints
    /// and job completions flush it back to disk.
    pub fn with_cache(
        workers: usize,
        store: SnapshotStore,
        cache_dir: Option<PathBuf>,
    ) -> Scheduler {
        Scheduler::with_options(
            SchedulerOptions {
                workers,
                cache_dir,
                ..SchedulerOptions::default()
            },
            store,
        )
    }

    /// The fully-shaped constructor: worker count, shard count, admission
    /// bound, fleet cache.
    pub fn with_options(opts: SchedulerOptions, store: SnapshotStore) -> Scheduler {
        let workers = opts.workers.max(1);
        let shard_count = if opts.shards == 0 {
            workers
        } else {
            opts.shards
        };
        let next_id = store
            .list()
            .ok()
            .and_then(|ids| ids.last().copied())
            .map_or(1, |max| max + 1);
        let fleet = opts.cache_dir.as_deref().map(|dir| {
            FleetCache::open_shared(dir, cpr_core::RepairConfig::quick().solver.fleet_capacity)
        });
        let obs = ServeObs::new(cpr_obs::global());
        if let Some(fleet) = &fleet {
            obs.fleet_store_bytes.set(clamp_i64(fleet.store_bytes()));
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                jobs: BTreeMap::new(),
                next_id,
                shutting_down: false,
            }),
            cv: Condvar::new(),
            shards: (0..shard_count).map(|_| Shard::new()).collect(),
            max_queued_jobs: opts.max_queued_jobs.max(1),
            store,
            obs,
            fleet,
            cache_dir: opts.cache_dir,
        });
        let handles = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                let home = w % shard_count;
                std::thread::spawn(move || worker_loop(&inner, home))
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// The number of run-queue shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Validates and enqueues a job; returns its id.
    ///
    /// Admission is bounded: while [`SchedulerOptions::max_queued_jobs`]
    /// jobs are already waiting, the submit is refused with a typed
    /// [`ERR_OVERLOADED`] error (running jobs don't count — they occupy
    /// workers, not queue space).
    ///
    /// With [`JobSpec::resume_from`], the job explicitly adopts the stored
    /// snapshot of that previous job (typically one a prior server process
    /// parked at shutdown) and continues it under the new id. The snapshot
    /// must exist and its header must match the spec's subject — both are
    /// checked here, so a wrong id fails the submit instead of the worker.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, ServeError> {
        // Resolve the subject up front so a typo fails the submit, not the
        // worker.
        let problem = job_problem(&spec)?;
        let inherited = match spec.resume_from {
            Some(old) => {
                let bytes = self
                    .inner
                    .store
                    .load(old)
                    .map_err(|e| format!("cannot read snapshot for job {old}: {e}"))?
                    .ok_or_else(|| format!("no snapshot for job {old} to resume from"))?;
                cpr_core::check_snapshot_header(&problem, &bytes)
                    .map_err(|e| format!("snapshot for job {old} does not fit this spec: {e}"))?;
                Some(bytes)
            }
            None => None,
        };
        let shard = self.inner.least_loaded_shard();
        let id = {
            let mut st = lock(&self.inner.state);
            if st.shutting_down {
                return Err("server is shutting down".into());
            }
            if Inner::queued_jobs(&st) >= self.inner.max_queued_jobs {
                self.inner.obs.jobs_overloaded.inc();
                return Err(ServeError::coded(
                    ERR_OVERLOADED,
                    format!(
                        "job queue is full ({} queued); retry later",
                        self.inner.max_queued_jobs
                    ),
                ));
            }
            let id = st.next_id;
            st.next_id += 1;
            if let Some(bytes) = inherited {
                // Copied under the new id *before* the job is enqueued, so
                // the worker's snapshot lookup always finds it.
                self.inner
                    .store
                    .save(id, &bytes)
                    .map_err(|e| format!("cannot adopt snapshot for job {id}: {e}"))?;
            }
            st.jobs.insert(
                id,
                Job {
                    spec,
                    state: JobState::Queued,
                    iterations: 0,
                    stop_reason: None,
                    report: None,
                    error: None,
                    cancel_requested: false,
                    pause_requested: false,
                    inbox: Vec::new(),
                    queued_at: Instant::now(),
                    shard,
                    obs: JobObs::default(),
                },
            );
            self.inner.obs.jobs_submitted.inc();
            self.inner.refresh_queue_depth(&st);
            id
        };
        self.inner.enqueue(id, shard);
        Ok(id)
    }

    /// The status of one job.
    pub fn status(&self, id: u64) -> Result<JobStatus, String> {
        let st = lock(&self.inner.state);
        let job = st.jobs.get(&id).ok_or_else(|| format!("no job {id}"))?;
        Ok(status_of(id, job))
    }

    /// The status of every job, ascending by id.
    pub fn status_all(&self) -> Vec<JobStatus> {
        let st = lock(&self.inner.state);
        st.jobs.iter().map(|(id, j)| status_of(*id, j)).collect()
    }

    /// Per-job observability rows for the `stats` verb, ascending by id.
    pub fn job_stats(&self) -> Json {
        let st = lock(&self.inner.state);
        Json::Arr(
            st.jobs
                .iter()
                .map(|(id, j)| {
                    let mut row = vec![
                        ("job", Json::Int(*id as i64)),
                        ("subject", Json::Str(j.spec.subject.clone())),
                        ("state", Json::Str(j.state.name().to_owned())),
                        ("iterations", Json::Int(j.iterations as i64)),
                        ("shard", Json::Int(j.shard as i64)),
                    ];
                    row.extend(j.obs.fields());
                    Json::obj(row)
                })
                .collect(),
        )
    }

    /// Requests cancellation. Queued jobs cancel immediately (their shard
    /// queue entry goes stale and is skipped); running jobs checkpoint
    /// first, so they stay resumable.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, String> {
        let mut st = lock(&self.inner.state);
        let job = st.jobs.get_mut(&id).ok_or_else(|| format!("no job {id}"))?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Canceled;
                let status = status_of(id, job);
                self.inner.refresh_queue_depth(&st);
                self.inner.cv.notify_all();
                Ok(status)
            }
            JobState::Running => {
                job.cancel_requested = true;
                Ok(status_of(id, job))
            }
            JobState::Paused => {
                // Already checkpointed; just reclassify.
                job.state = JobState::Canceled;
                self.inner.cv.notify_all();
                Ok(status_of(id, job))
            }
            s => Err(format!("job {id} is {} and cannot be canceled", s.name())),
        }
    }

    /// Requests suspension of a running or queued job.
    pub fn pause(&self, id: u64) -> Result<JobStatus, String> {
        let mut st = lock(&self.inner.state);
        let job = st.jobs.get_mut(&id).ok_or_else(|| format!("no job {id}"))?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Paused;
                let status = status_of(id, job);
                self.inner.refresh_queue_depth(&st);
                self.inner.cv.notify_all();
                Ok(status)
            }
            JobState::Running => {
                job.pause_requested = true;
                Ok(status_of(id, job))
            }
            s => Err(format!("job {id} is {} and cannot be paused", s.name())),
        }
    }

    /// Re-enqueues a paused or canceled job on the least-loaded shard. It
    /// continues from its latest durable snapshot (or from scratch if it
    /// never started).
    pub fn resume(&self, id: u64) -> Result<JobStatus, String> {
        self.resume_on(id, self.inner.least_loaded_shard())
    }

    /// Like [`Scheduler::resume`], but places the job on an explicit
    /// shard — the rebalance hook: drain logic (and tests) use it to move
    /// parked work onto specific shards. Crossing shards is pure
    /// placement; the job's repair state comes entirely from its
    /// snapshot, so the report is bit-identical wherever it lands.
    pub fn resume_on(&self, id: u64, shard: usize) -> Result<JobStatus, String> {
        if shard >= self.inner.shards.len() {
            return Err(format!(
                "no shard {shard} (this scheduler has {})",
                self.inner.shards.len()
            ));
        }
        let status = {
            let mut st = lock(&self.inner.state);
            if st.shutting_down {
                return Err("server is shutting down".into());
            }
            let job = st.jobs.get_mut(&id).ok_or_else(|| format!("no job {id}"))?;
            match job.state {
                JobState::Paused | JobState::Canceled => {
                    job.state = JobState::Queued;
                    job.cancel_requested = false;
                    job.pause_requested = false;
                    job.queued_at = Instant::now();
                    if job.shard != shard {
                        self.inner.obs.shard_rebalanced.inc();
                    }
                    job.shard = shard;
                    let status = status_of(id, job);
                    self.inner.refresh_queue_depth(&st);
                    status
                }
                s => return Err(format!("job {id} is {} and cannot be resumed", s.name())),
            }
        };
        self.inner.enqueue(id, shard);
        Ok(status)
    }

    /// Streams an input into a live job — the continuous-repair entry
    /// point behind the protocol's `inject` verb. The input is validated
    /// against the subject's declared inputs here, so a malformed
    /// injection fails this call instead of the job. Valid inputs are
    /// buffered in the job's inbox; a running job's worker applies them
    /// between driver steps, and a queued/parked job applies them as soon
    /// as its driver is (re)built — in both cases through
    /// [`RepairDriver::inject_input`], so the injected-band determinism
    /// contract holds.
    ///
    /// Returns the number of injections delivered to this job so far
    /// (including ones still in the inbox).
    pub fn inject(&self, id: u64, input: &[(String, i64)]) -> Result<u64, String> {
        let reject = |msg: String| {
            self.inner.obs.inject_rejected.inc();
            Err(msg)
        };
        let spec = {
            let st = lock(&self.inner.state);
            let Some(job) = st.jobs.get(&id) else {
                return reject(format!("no job {id}"));
            };
            if matches!(job.state, JobState::Done | JobState::Failed) {
                return reject(format!(
                    "job {id} is {}; cannot inject into a finished run",
                    job.state.name()
                ));
            }
            job.spec.clone()
        };
        // Resolve the subject outside the lock (it parses the program) and
        // validate the valuation against its declared inputs.
        let problem = match job_problem(&spec) {
            Ok(p) => p,
            Err(e) => return reject(e),
        };
        if let Err(e) = validate_injection(&problem, input) {
            return reject(e);
        }
        let mut st = lock(&self.inner.state);
        let Some(job) = st.jobs.get_mut(&id) else {
            return reject(format!("no job {id}"));
        };
        // Re-check: the job may have finished while the lock was released.
        if matches!(job.state, JobState::Done | JobState::Failed) {
            return reject(format!(
                "job {id} is {}; cannot inject into a finished run",
                job.state.name()
            ));
        }
        let mut pairs: Vec<(String, i64)> = input.to_vec();
        pairs.sort();
        job.inbox.push(pairs);
        job.obs.injections += 1;
        let total = job.obs.injections;
        self.inner.obs.inject_accepted.inc();
        Ok(total)
    }

    /// The final report of a completed job, as protocol JSON.
    pub fn report(&self, id: u64) -> Result<Json, String> {
        let st = lock(&self.inner.state);
        let job = st.jobs.get(&id).ok_or_else(|| format!("no job {id}"))?;
        match (&job.report, job.state) {
            (Some(r), _) => Ok(r.clone()),
            (None, JobState::Failed) => Err(job
                .error
                .clone()
                .unwrap_or_else(|| format!("job {id} failed"))),
            (None, s) => Err(format!("job {id} is {}; no report yet", s.name())),
        }
    }

    /// Blocks until the job reaches a terminal state (done, failed,
    /// paused, canceled) or the timeout elapses; returns the final status
    /// observed.
    pub fn wait(&self, id: u64, timeout: Duration) -> Result<JobStatus, String> {
        let deadline = Instant::now().checked_add(timeout).unwrap_or_else(|| {
            // An effectively-infinite timeout overflowed Instant; cap it.
            Instant::now() + Duration::from_secs(60 * 60 * 24 * 365)
        });
        let mut st = lock(&self.inner.state);
        loop {
            let Some(job) = st.jobs.get(&id) else {
                return Err(format!("no job {id}"));
            };
            if job.state.is_terminal() {
                return Ok(status_of(id, job));
            }
            // Saturating: a wakeup can land after the deadline (or a 0ms
            // timeout can start past it), and `deadline - now` would then
            // panic on Duration underflow and kill the caller.
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(status_of(id, job));
            }
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(st, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// The snapshot store backing this scheduler.
    pub fn store(&self) -> &SnapshotStore {
        &self.inner.store
    }

    /// Fleet-cache figures for the `stats` verb: whether a cache is
    /// configured, its lifetime hit/miss tallies and hit rate, and the
    /// on-disk store footprint. All fields are present (at zero) when no
    /// cache is configured, so clients can parse one shape.
    pub fn fleet_stats(&self) -> Json {
        let (enabled, hits, misses, store_bytes, entries) = match &self.inner.fleet {
            Some(fleet) => {
                let (h, m) = fleet.hit_counts();
                (true, h, m, fleet.store_bytes(), fleet.entries() as u64)
            }
            None => (false, 0, 0, 0, 0),
        };
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        Json::obj(vec![
            ("enabled", Json::Bool(enabled)),
            ("hits", Json::Int(clamp_i64(hits))),
            ("misses", Json::Int(clamp_i64(misses))),
            ("hit_rate", Json::Float(hit_rate)),
            ("store_bytes", Json::Int(clamp_i64(store_bytes))),
            ("entries", Json::Int(clamp_i64(entries))),
        ])
    }

    /// Graceful shutdown: pause every running job (each checkpoints and
    /// parks), park queued jobs, and join the workers.
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.inner.state);
            st.shutting_down = true;
            // Queued jobs park as paused; their shard-queue entries go
            // stale. Their snapshots (none yet for these) stay in the
            // store; a future scheduler over the same store seeds its ids
            // past them and can only pick one up when a client submits
            // with `resume_from` explicitly.
            for job in st.jobs.values_mut() {
                match job.state {
                    JobState::Queued => job.state = JobState::Paused,
                    JobState::Running => job.pause_requested = true,
                    _ => {}
                }
            }
            self.inner.refresh_queue_depth(&st);
            self.inner.cv.notify_all();
        }
        for shard in &self.inner.shards {
            shard.cv.notify_all();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *lock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Checks an injected valuation against the subject's declared inputs:
/// every declared input present and in range, no unknown names. Mirrors
/// [`RepairDriver::inject_input`]'s validation so malformed injections
/// fail at the protocol boundary instead of inside the worker.
fn validate_injection(problem: &RepairProblem, input: &[(String, i64)]) -> Result<(), String> {
    for decl in &problem.program.inputs {
        let Some(&(_, value)) = input.iter().find(|(name, _)| *name == decl.name) else {
            return Err(format!("injected input is missing \"{}\"", decl.name));
        };
        if value < decl.lo || value > decl.hi {
            return Err(format!(
                "injected value {}={} is outside the declared range [{}, {}]",
                decl.name, value, decl.lo, decl.hi
            ));
        }
    }
    if input.len() > problem.program.inputs.len() {
        let unknown = input
            .iter()
            .map(|(name, _)| name)
            .find(|name| !problem.program.inputs.iter().any(|d| &&d.name == name))
            .cloned()
            .unwrap_or_default();
        return Err(format!(
            "injected input names unknown variable \"{unknown}\""
        ));
    }
    Ok(())
}

fn status_of(id: u64, job: &Job) -> JobStatus {
    JobStatus {
        id,
        subject: job.spec.subject.clone(),
        state: job.state,
        iterations: job.iterations,
        stop_reason: job.stop_reason,
        error: job.error.clone(),
    }
}

/// Claims the next runnable job visible from `home`: the home shard's
/// queue first, then the other shards in ring order (a successful
/// cross-shard pop is a steal). Entries are claimed by re-checking, under
/// the global lock, that the job is still `Queued` — stale entries left
/// behind by cancel/pause/shutdown are popped and dropped. The shard lock
/// is always released before the global lock is taken, so there is no
/// lock-order coupling between the two.
fn claim_job(inner: &Inner, home: usize) -> Option<(u64, JobSpec)> {
    let n = inner.shards.len();
    for offset in 0..n {
        let src = (home + offset) % n;
        loop {
            let popped = lock(&inner.shards[src].queue).pop_front();
            let Some(id) = popped else { break };
            let mut st = lock(&inner.state);
            let Some(job) = st.jobs.get_mut(&id) else {
                continue;
            };
            if job.state != JobState::Queued {
                continue; // stale entry: canceled, paused, or parked
            }
            job.state = JobState::Running;
            job.shard = home;
            let waited = nanos_u64(job.queued_at.elapsed());
            job.obs.queue_wait_nanos += waited;
            inner.obs.queue_wait.record(waited);
            if src != home {
                inner.obs.shard_steals.inc();
            }
            let spec = job.spec.clone();
            inner.refresh_queue_depth(&st);
            return Some((id, spec));
        }
    }
    None
}

fn worker_loop(inner: &Inner, home: usize) {
    loop {
        if let Some((id, spec)) = claim_job(inner, home) {
            run_job(inner, id, &spec);
            continue;
        }
        if lock(&inner.state).shutting_down {
            return;
        }
        let shard = &inner.shards[home];
        let q = lock(&shard.queue);
        if !q.is_empty() {
            continue; // work arrived between the claim pass and this lock
        }
        // The bounded sleep backstops two benign races: a cross-shard
        // enqueue that found no idle worker to wake, and an idle-count
        // read that raced this registration.
        shard.idle.fetch_add(1, Ordering::SeqCst);
        let (q, _) = shard
            .cv
            .wait_timeout(q, Duration::from_millis(50))
            .unwrap_or_else(PoisonError::into_inner);
        shard.idle.fetch_sub(1, Ordering::SeqCst);
        drop(q);
    }
}

fn nanos_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Marks a job terminal under the lock and wakes waiters.
fn finish_job(inner: &Inner, id: u64, f: impl FnOnce(&mut Job)) {
    let mut st = lock(&inner.state);
    if let Some(job) = st.jobs.get_mut(&id) {
        f(job);
        job.cancel_requested = false;
        job.pause_requested = false;
        match job.state {
            JobState::Done => inner.obs.jobs_done.inc(),
            JobState::Failed => inner.obs.jobs_failed.inc(),
            _ => {}
        }
    }
    inner.cv.notify_all();
}

/// Runs one job with panic containment: an unwinding `RepairDriver` (or
/// any other panic on this path) marks *this* job failed with the panic
/// payload and leaves every sibling job, worker, and server loop healthy.
fn run_job(inner: &Inner, id: u64, spec: &JobSpec) {
    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| run_job_inner(inner, id, spec))) {
        finish_job(inner, id, |job| {
            job.state = JobState::Failed;
            job.error = Some(format!("job panicked: {}", panic_message(&*payload)));
        });
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
static PANIC_JOB: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn run_job_inner(inner: &Inner, id: u64, spec: &JobSpec) {
    #[cfg(test)]
    if PANIC_JOB.load(std::sync::atomic::Ordering::Relaxed) == id {
        panic!("injected panic for job {id}");
    }
    let fail = |msg: String| {
        finish_job(inner, id, |job| {
            job.state = JobState::Failed;
            job.error = Some(msg);
        });
    };
    let problem = match job_problem(spec) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    let mut config = job_config(spec);
    // Point the job's solver at the scheduler's fleet cache directory; the
    // solver resolves it through the per-directory registry, so every job
    // in this process shares the one warm-loaded instance.
    config.solver.cache_dir = inner.cache_dir.clone();
    let checkpoint_every = spec
        .checkpoint_every
        .unwrap_or(DEFAULT_CHECKPOINT_EVERY)
        .max(1);

    // Continue from the durable snapshot when one exists (a resumed or
    // re-run job), else start fresh.
    let mut driver = match inner.store.load(id) {
        Ok(Some(bytes)) => match RepairDriver::resume(problem, config, &bytes) {
            Ok(d) => d,
            Err(e) => return fail(format!("snapshot for job {id} is unusable: {e}")),
        },
        Ok(None) => RepairDriver::new(problem, config),
        Err(e) => return fail(format!("cannot read snapshot for job {id}: {e}")),
    };

    // Applies buffered injections to the driver — called right after the
    // driver is built (covers inputs injected while the job was queued or
    // parked) and between steps (covers a running job). Entries were
    // validated at the protocol boundary; a driver-side rejection here
    // (the run stopped in the meantime) only bumps the rejected counter.
    let drain_inbox = |driver: &mut RepairDriver| {
        let pending: Vec<Vec<(String, i64)>> = {
            let mut st = lock(&inner.state);
            st.jobs
                .get_mut(&id)
                .map(|job| std::mem::take(&mut job.inbox))
                .unwrap_or_default()
        };
        for pairs in pending {
            let input: cpr_core::TestInput = pairs.into_iter().collect();
            match driver.inject_input(&input) {
                Ok(()) => inner.obs.inject_applied.inc(),
                Err(_) => inner.obs.inject_rejected.inc(),
            }
        }
    };
    drain_inbox(&mut driver);

    // Checkpoint helper: times the durable write (create + write + fsync +
    // rename) and records snapshot size, per job and in the aggregates.
    let save_checkpoint = |driver: &RepairDriver| -> Result<(), String> {
        let bytes = driver.snapshot();
        let t0 = Instant::now();
        inner
            .store
            .save(id, &bytes)
            .map_err(|e| format!("cannot checkpoint job {id}: {e}"))?;
        let fsync_nanos = nanos_u64(t0.elapsed());
        inner.obs.snapshots_written.inc();
        inner.obs.snapshot_bytes.record(bytes.len() as u64);
        inner.obs.snapshot_fsync.record(fsync_nanos);
        // Piggyback the fleet-cache flush on the job checkpoint: verdicts
        // learned since the last checkpoint become durable at the same
        // cadence as the job state itself.
        inner.flush_fleet();
        let mut st = lock(&inner.state);
        if let Some(job) = st.jobs.get_mut(&id) {
            job.obs.snapshots_written += 1;
            job.obs.snapshot_bytes = bytes.len() as u64;
            job.obs.snapshot_fsync_nanos += fsync_nanos;
        }
        Ok(())
    };

    let mut steps = 0usize;
    loop {
        // Observe control flags between steps; park with a durable
        // snapshot so the job stays resumable.
        let (cancel, pause) = {
            let st = lock(&inner.state);
            match st.jobs.get(&id) {
                Some(job) => (job.cancel_requested, job.pause_requested),
                None => (true, false),
            }
        };
        if cancel || pause {
            // Fold pending injections into the checkpoint so the parked
            // snapshot carries them durably (the inbox itself is only
            // in-memory).
            drain_inbox(&mut driver);
            if let Err(e) = save_checkpoint(&driver) {
                return fail(e);
            }
            return finish_job(inner, id, |job| {
                job.state = if cancel {
                    JobState::Canceled
                } else {
                    JobState::Paused
                };
                job.iterations = driver.iterations();
            });
        }
        drain_inbox(&mut driver);
        let t0 = Instant::now();
        let status = driver.step();
        let step_nanos = nanos_u64(t0.elapsed());
        inner.obs.step.record(step_nanos);
        if status != StepStatus::Running {
            // Count the terminal step in the per-job tallies too.
            let mut st = lock(&inner.state);
            if let Some(job) = st.jobs.get_mut(&id) {
                job.obs.steps += 1;
                job.obs.step_nanos += step_nanos;
            }
            break;
        }
        steps += 1;
        if steps.is_multiple_of(checkpoint_every) {
            if let Err(e) = save_checkpoint(&driver) {
                return fail(e);
            }
        }
        {
            let mut st = lock(&inner.state);
            if let Some(job) = st.jobs.get_mut(&id) {
                job.iterations = driver.iterations();
                job.obs.steps += 1;
                job.obs.step_nanos += step_nanos;
            }
        }
    }

    let stop = driver.stop_reason().map(|s| s.name());
    let iterations = driver.iterations();
    let report = report_to_json(&driver.finish());
    // The job is complete; its checkpoint has served its purpose. The
    // fleet cache, by contrast, outlives the job — flush what it learned.
    inner.flush_fleet();
    let _ = inner.store.remove(id);
    finish_job(inner, id, |job| {
        job.state = JobState::Done;
        job.iterations = iterations;
        job.stop_reason = stop;
        job.report = Some(report);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("cpr_serve_sched_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).unwrap()
    }

    fn quick_spec(subject: &str) -> JobSpec {
        let mut spec = JobSpec::new(subject);
        spec.max_iterations = Some(6);
        spec.checkpoint_every = Some(2);
        spec
    }

    fn first_subject() -> String {
        all_subjects()
            .iter()
            .find(|s| !s.not_supported)
            .unwrap()
            .name()
    }

    #[test]
    fn submit_rejects_unknown_and_unsupported_subjects() {
        let sched = Scheduler::new(1, temp_store("reject"));
        assert!(sched.submit(JobSpec::new("no/such-subject")).is_err());
        if let Some(s) = all_subjects().iter().find(|s| s.not_supported) {
            assert!(sched.submit(JobSpec::new(s.name())).is_err());
        }
        assert!(sched.status(99).is_err());
        assert!(sched.cancel(99).is_err());
        assert!(sched.report(99).is_err());
        sched.shutdown();
    }

    #[test]
    fn job_runs_to_done_and_matches_direct_repair() {
        let sched = Scheduler::new(2, temp_store("done"));
        let spec = quick_spec(&first_subject());
        let id = sched.submit(spec.clone()).unwrap();
        let status = sched.wait(id, Duration::from_secs(120)).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert!(status.stop_reason.is_some());
        let report = sched.report(id).unwrap();
        let direct = report_to_json(&cpr_core::repair(
            &job_problem(&spec).unwrap(),
            &job_config(&spec),
        ));
        assert_eq!(
            crate::protocol::report_fingerprint(&report),
            crate::protocol::report_fingerprint(&direct),
        );
        // Done jobs keep no checkpoint.
        assert_eq!(sched.store().load(id).unwrap(), None);
        sched.shutdown();
        let _ = std::fs::remove_dir_all(sched.store().dir());
    }

    #[test]
    fn stale_snapshots_from_a_previous_process_are_never_adopted_implicitly() {
        // A "previous server process" left a checkpoint for a *different*
        // subject under job id 1. Under id collision, a fresh submit would
        // adopt it and fail with a subject mismatch; with ids seeded past
        // the store, the new job runs cold and completes.
        let subjects = all_subjects();
        let mut supported = subjects.iter().filter(|s| !s.not_supported);
        let subject_a = supported.next().unwrap().name();
        let subject_b = supported.next().expect("two supported subjects").name();

        let store = temp_store("stale");
        let stale_spec = quick_spec(&subject_b);
        let driver = RepairDriver::new(job_problem(&stale_spec).unwrap(), job_config(&stale_spec));
        store.save(1, &driver.snapshot()).unwrap();

        let sched = Scheduler::new(1, store);
        let id = sched.submit(quick_spec(&subject_a)).unwrap();
        assert_ne!(id, 1, "fresh submit must not reuse a stored job id");
        let status = sched.wait(id, Duration::from_secs(240)).unwrap();
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        // The stale snapshot is still there, inert, for an explicit
        // resume_from to claim.
        assert!(sched.store().load(1).unwrap().is_some());
        sched.shutdown();
        let _ = std::fs::remove_dir_all(sched.store().dir());
    }

    #[test]
    fn resume_from_adopts_a_stored_snapshot_explicitly() {
        let subjects = all_subjects();
        let mut supported = subjects.iter().filter(|s| !s.not_supported);
        let subject_a = supported.next().unwrap().name();
        let subject_b = supported.next().expect("two supported subjects").name();

        // A mid-run checkpoint parked under job id 5 by an earlier run.
        let store = temp_store("adopt");
        let spec = quick_spec(&subject_a);
        let mut driver = RepairDriver::new(job_problem(&spec).unwrap(), job_config(&spec));
        driver.step();
        driver.step();
        store.save(5, &driver.snapshot()).unwrap();

        let sched = Scheduler::new(1, SnapshotStore::open(store.dir()).unwrap());
        // A missing snapshot fails the submit, not the worker.
        let mut missing = spec.clone();
        missing.resume_from = Some(42);
        assert!(sched.submit(missing).unwrap_err().contains("no snapshot"));
        // A wrong-subject snapshot is rejected up front too.
        let mut mismatched = quick_spec(&subject_b);
        mismatched.resume_from = Some(5);
        assert!(sched
            .submit(mismatched)
            .unwrap_err()
            .contains("does not fit"));
        // The right spec adopts the checkpoint and finishes with exactly
        // the report a cold direct run produces.
        let mut warm = spec.clone();
        warm.resume_from = Some(5);
        let id = sched.submit(warm).unwrap();
        assert!(id > 5, "ids are seeded past stored snapshots");
        let status = sched.wait(id, Duration::from_secs(240)).unwrap();
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
        let report = sched.report(id).unwrap();
        let direct = report_to_json(&cpr_core::repair(
            &job_problem(&spec).unwrap(),
            &job_config(&spec),
        ));
        assert_eq!(
            crate::protocol::report_fingerprint(&report),
            crate::protocol::report_fingerprint(&direct),
        );
        sched.shutdown();
        let _ = std::fs::remove_dir_all(sched.store().dir());
    }

    #[test]
    fn wait_with_zero_and_tiny_timeouts_never_panics_under_load() {
        // Regression: `wait` computed `deadline - now` with Instant
        // subtraction; a wakeup landing after the deadline made the
        // Duration subtraction underflow and panic. Hammer `wait` with
        // 0ms/1ms budgets from several threads while jobs run, so wakeups
        // routinely straddle the deadline.
        let sched = Scheduler::new(2, temp_store("tinywait"));
        let subject = first_subject();
        let ids: Vec<u64> = (0..3)
            .map(|_| sched.submit(quick_spec(&subject)).unwrap())
            .collect();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let sched = &sched;
                let ids = &ids;
                s.spawn(move || {
                    for round in 0..200u64 {
                        let timeout = Duration::from_millis((round + t) % 2);
                        for &id in ids {
                            let status = sched.wait(id, timeout).unwrap();
                            assert!(!status.subject.is_empty());
                        }
                    }
                });
            }
        });
        // The scheduler is still fully functional afterwards.
        for id in ids {
            let st = sched.wait(id, Duration::from_secs(240)).unwrap();
            assert_eq!(st.state, JobState::Done, "{:?}", st.error);
        }
        sched.shutdown();
        let _ = std::fs::remove_dir_all(sched.store().dir());
    }

    #[test]
    fn a_panicking_job_fails_alone_and_leaves_siblings_healthy() {
        let sched = Scheduler::new(1, temp_store("poison"));
        let subject = first_subject();
        // The next submit gets this id; arm the injection before the
        // single worker can pick the job up.
        let doomed_id = {
            let st = lock(&sched.inner.state);
            st.next_id
        };
        PANIC_JOB.store(doomed_id, std::sync::atomic::Ordering::Relaxed);
        let doomed = sched.submit(quick_spec(&subject)).unwrap();
        assert_eq!(doomed, doomed_id);
        let sibling = sched.submit(quick_spec(&subject)).unwrap();

        let status = sched.wait(doomed, Duration::from_secs(240)).unwrap();
        PANIC_JOB.store(0, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(status.state, JobState::Failed);
        let err = status.error.expect("panic payload surfaces in status");
        assert!(err.contains("injected panic"), "unexpected error: {err}");

        // The sibling on the same worker still runs to completion, and the
        // control surface (status/report/submit) stays responsive.
        let st = sched.wait(sibling, Duration::from_secs(240)).unwrap();
        assert_eq!(st.state, JobState::Done, "{:?}", st.error);
        assert!(sched.report(sibling).is_ok());
        assert!(sched.report(doomed).is_err());
        let late = sched.submit(quick_spec(&subject)).unwrap();
        let st = sched.wait(late, Duration::from_secs(240)).unwrap();
        assert_eq!(st.state, JobState::Done, "{:?}", st.error);
        sched.shutdown();
        let _ = std::fs::remove_dir_all(sched.store().dir());
    }

    #[test]
    fn a_poisoned_state_mutex_is_recovered_not_cascaded() {
        // Poison the shared state mutex directly (a panic while holding
        // the guard), then check every handler keeps working through
        // `PoisonError::into_inner` instead of unwrapping the poison.
        let sched = Scheduler::new(1, temp_store("recover"));
        let subject = first_subject();
        let inner = Arc::clone(&sched.inner);
        let _ = std::thread::spawn(move || {
            let _guard = inner.state.lock().unwrap();
            panic!("poison the scheduler state mutex");
        })
        .join();
        assert!(sched.inner.state.is_poisoned());
        let id = sched.submit(quick_spec(&subject)).unwrap();
        assert!(sched.status(id).is_ok());
        assert_eq!(sched.status_all().len(), 1);
        let st = sched.wait(id, Duration::from_secs(240)).unwrap();
        assert_eq!(st.state, JobState::Done, "{:?}", st.error);
        assert!(sched.report(id).is_ok());
        sched.shutdown();
        let _ = std::fs::remove_dir_all(sched.store().dir());
    }

    #[test]
    fn job_stats_rows_cover_every_job_with_observability_tallies() {
        let sched = Scheduler::new(2, temp_store("jobstats"));
        let subject = first_subject();
        let id = sched.submit(quick_spec(&subject)).unwrap();
        let st = sched.wait(id, Duration::from_secs(240)).unwrap();
        assert_eq!(st.state, JobState::Done, "{:?}", st.error);
        let Json::Arr(rows) = sched.job_stats() else {
            panic!("job_stats is an array")
        };
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.get("job").and_then(Json::as_u64), Some(id));
        assert_eq!(row.get("state").and_then(Json::as_str), Some("done"));
        // The job ran (6 iterations, checkpoint_every=2): steps and step
        // time accrued, and at least one checkpoint was written and fsynced.
        assert!(row.get("steps").and_then(Json::as_u64).unwrap() > 0);
        assert!(row.get("step_nanos").and_then(Json::as_u64).unwrap() > 0);
        assert!(row.get("snapshots_written").and_then(Json::as_u64).unwrap() > 0);
        assert!(row.get("snapshot_bytes").and_then(Json::as_u64).unwrap() > 0);
        assert!(row.get("queue_wait_nanos").and_then(Json::as_u64).is_some());
        assert!(row.get("shard").and_then(Json::as_u64).is_some());
        sched.shutdown();
        let _ = std::fs::remove_dir_all(sched.store().dir());
    }

    #[test]
    fn injections_reach_parked_jobs_and_are_rejected_after_completion() {
        // One worker: the first job occupies it, the second parks, so the
        // injection lands in a parked job's inbox and is applied when its
        // driver is rebuilt on resume.
        let sched = Scheduler::new(1, temp_store("inject"));
        let subject = first_subject();
        let busy = sched.submit(quick_spec(&subject)).unwrap();
        let parked = sched.submit(quick_spec(&subject)).unwrap();
        sched.pause(parked).unwrap();

        let problem = job_problem(&quick_spec(&subject)).unwrap();
        let input: Vec<(String, i64)> = problem
            .program
            .inputs
            .iter()
            .map(|d| (d.name.clone(), d.lo))
            .collect();
        assert_eq!(sched.inject(parked, &input).unwrap(), 1);
        assert_eq!(sched.inject(parked, &input).unwrap(), 2);
        // Malformed injections fail at the protocol boundary, not the job.
        let mut unknown = input.clone();
        unknown.push(("no_such_input".into(), 0));
        let err = sched.inject(parked, &unknown).unwrap_err();
        assert!(err.contains("unknown variable"), "{err}");
        assert!(sched.inject(99, &input).is_err());

        sched.resume(parked).unwrap();
        for id in [busy, parked] {
            let st = sched.wait(id, Duration::from_secs(240)).unwrap();
            assert_eq!(st.state, JobState::Done, "{:?}", st.error);
        }
        // Terminal jobs reject injections with a clear reason.
        let err = sched.inject(parked, &input).unwrap_err();
        assert!(err.contains("finished run"), "{err}");
        // The per-job tally counts accepted injections only.
        let Json::Arr(rows) = sched.job_stats() else {
            panic!("job_stats is an array")
        };
        let row = rows
            .iter()
            .find(|r| r.get("job").and_then(Json::as_u64) == Some(parked))
            .unwrap();
        assert_eq!(row.get("injections").and_then(Json::as_u64), Some(2));
        sched.shutdown();
        let _ = std::fs::remove_dir_all(sched.store().dir());
    }

    #[test]
    fn queued_jobs_cancel_pause_and_resume() {
        // No free workers: the single worker is busy with the first job,
        // so the rest stay queued and exercise the queued-state paths
        // (including stale shard-queue entries being skipped, since lazy
        // removal leaves their ids behind).
        let sched = Scheduler::new(1, temp_store("queued"));
        let subject = first_subject();
        let busy = sched.submit(quick_spec(&subject)).unwrap();
        let a = sched.submit(quick_spec(&subject)).unwrap();
        let b = sched.submit(quick_spec(&subject)).unwrap();
        let canceled = sched.cancel(a).unwrap();
        assert_eq!(canceled.state, JobState::Canceled);
        let paused = sched.pause(b).unwrap();
        assert_eq!(paused.state, JobState::Paused);
        assert!(sched.report(a).is_err());
        // Both park states resume back into the queue and finish.
        sched.resume(a).unwrap();
        sched.resume(b).unwrap();
        for id in [busy, a, b] {
            let st = sched.wait(id, Duration::from_secs(240)).unwrap();
            assert_eq!(st.state, JobState::Done, "job {id}");
        }
        sched.shutdown();
        let _ = std::fs::remove_dir_all(sched.store().dir());
    }

    #[test]
    fn submits_past_the_admission_bound_get_a_typed_overloaded_error() {
        // One worker occupied by a long-running job; a queue bound of 1
        // admits exactly one waiter, and the next submit is refused with
        // the machine-readable `overloaded` code.
        let store = temp_store("overload");
        let sched = Scheduler::with_options(
            SchedulerOptions {
                workers: 1,
                max_queued_jobs: 1,
                ..SchedulerOptions::default()
            },
            store,
        );
        let subject = first_subject();
        let mut long = quick_spec(&subject);
        long.max_iterations = Some(500);
        let busy = sched.submit(long).unwrap();
        // Wait until the worker has actually claimed it, so the admission
        // count sees one queued, not two.
        let deadline = Instant::now() + Duration::from_secs(60);
        while sched.status(busy).unwrap().state == JobState::Queued {
            assert!(Instant::now() < deadline, "job never started");
            std::thread::sleep(Duration::from_millis(5));
        }
        let waiter = sched.submit(quick_spec(&subject)).unwrap();
        let err = sched.submit(quick_spec(&subject)).unwrap_err();
        assert_eq!(err.code(), Some(crate::protocol::ERR_OVERLOADED));
        assert!(err.contains("queue is full"), "{err}");
        // Admission pressure clears as the queue drains: cancel the
        // waiter and the next submit is accepted again.
        sched.cancel(waiter).unwrap();
        assert!(sched.submit(quick_spec(&subject)).is_ok());
        sched.cancel(busy).unwrap();
        sched.shutdown();
        let _ = std::fs::remove_dir_all(sched.store().dir());
    }

    #[test]
    fn work_submitted_to_one_shard_is_stolen_by_idle_workers() {
        // Four workers, four shards, four jobs force-placed far from
        // their claimants via resume_on: with every job parked first and
        // then resumed onto shard 0, three of the four can only run if
        // other shards' workers steal them.
        let store = temp_store("steal");
        let sched = Scheduler::with_options(
            SchedulerOptions {
                workers: 4,
                shards: 4,
                ..SchedulerOptions::default()
            },
            store,
        );
        assert_eq!(sched.shards(), 4);
        let subject = first_subject();
        let ids: Vec<u64> = (0..4)
            .map(|_| sched.submit(quick_spec(&subject)).unwrap())
            .collect();
        for &id in &ids {
            let st = sched.wait(id, Duration::from_secs(240)).unwrap();
            assert_eq!(st.state, JobState::Done, "{:?}", st.error);
        }
        // Placement on a nonexistent shard is refused.
        assert!(sched.resume_on(ids[0], 99).is_err());
        sched.shutdown();
        let _ = std::fs::remove_dir_all(sched.store().dir());
    }
}
