//! The `stats` verb: process-wide metrics as protocol JSON.
//!
//! [`metrics_to_json`] serializes a [`cpr_obs::MetricsSnapshot`] with the
//! same hand-rolled [`Json`] writer the rest of the protocol uses, so a
//! stats response round-trips through [`crate::json::parse`] like any
//! other message. The shape is versioned independently of the protocol
//! (`stats_version`) so the metric schema can evolve without a protocol
//! bump:
//!
//! ```text
//! {
//!   "counters": {"solver.queries": 41, ...},
//!   "gauges": {"driver.pool_patches": 7, ...},
//!   "histograms": [
//!     {"name": "solver.solve_nanos", "count": 41, "sum": 901234,
//!      "buckets": [{"le": 4096, "count": 3}, {"le": 16384, "count": 38}]}
//!   ]
//! }
//! ```
//!
//! Buckets are cumulative-free `(le, count)` pairs — each carries only its
//! own samples, and empty buckets are omitted — matching the
//! [`cpr_obs::HistogramSnapshot`] layout. `u64` totals that exceed
//! `i64::MAX` (in practice only the overflow bucket's `le`) are clamped,
//! since the JSON writer carries integers as `i64`.

use cpr_obs::{HistogramSnapshot, MetricsSnapshot};

use crate::json::Json;

/// Version of the stats response shape (independent of
/// [`crate::protocol::PROTOCOL_VERSION`]). Bumped to 2 when the response
/// gained the top-level `fleet` object (fleet solver-cache hit/miss
/// tallies, hit rate, and on-disk store size); to 3 with the epoll
/// serving tier, when job rows gained a `shard` field and the process
/// section the `serve.accept.*`, `serve.shard.*` and `serve.conn.*`
/// metric families.
pub const STATS_VERSION: i64 = 3;

fn clamp_i64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    let buckets = h
        .buckets
        .iter()
        .map(|&(le, count)| {
            Json::obj(vec![
                ("le", Json::Int(clamp_i64(le))),
                ("count", Json::Int(clamp_i64(count))),
            ])
        })
        .collect();
    Json::obj(vec![
        ("name", Json::Str(h.name.clone())),
        ("count", Json::Int(clamp_i64(h.count))),
        ("sum", Json::Int(clamp_i64(h.sum))),
        ("buckets", Json::Arr(buckets)),
    ])
}

/// Serializes a metrics snapshot as the `"process"` section of a `stats`
/// response: counters and gauges as name-keyed objects (sorted by name,
/// as the snapshot already is), histograms as an array of objects.
pub fn metrics_to_json(snap: &MetricsSnapshot) -> Json {
    let counters = snap
        .counters
        .iter()
        .map(|(name, v)| (name.clone(), Json::Int(clamp_i64(*v))))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(name, v)| (name.clone(), Json::Int(*v)))
        .collect();
    let histograms = snap.histograms.iter().map(histogram_to_json).collect();
    Json::Obj(vec![
        ("counters".to_owned(), Json::Obj(counters)),
        ("gauges".to_owned(), Json::Obj(gauges)),
        ("histograms".to_owned(), Json::Arr(histograms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use cpr_obs::MetricsRegistry;

    /// Property test: a snapshot of a registry fed pseudo-random values
    /// survives the serialize → line → parse round trip with every name,
    /// total and bucket intact.
    #[test]
    fn snapshot_round_trips_through_the_protocol_json() {
        let reg = MetricsRegistry::new();
        // Deterministic LCG so the test covers a spread of magnitudes
        // (including values that land in many different buckets) without
        // depending on an external randomness source.
        let mut state: u64 = 0x2545_F491_4F6C_DD1D;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for i in 0..16 {
            let c = reg.counter(&format!("test.counter_{i}"));
            c.add(next());
            let g = reg.gauge(&format!("test.gauge_{i}"));
            g.set(next() as i64 - (1 << 29));
            let h = reg.histogram(&format!("test.hist_{i}"));
            for _ in 0..64 {
                h.record(next() >> (i % 32));
            }
        }

        let snap = reg.snapshot();
        let line = metrics_to_json(&snap).to_line();
        let parsed = json::parse(&line).unwrap();

        let counters = parsed.get("counters").unwrap();
        for (name, v) in &snap.counters {
            assert_eq!(
                counters.get(name).and_then(Json::as_u64),
                Some(*v),
                "{name}"
            );
        }
        let gauges = parsed.get("gauges").unwrap();
        for (name, v) in &snap.gauges {
            assert_eq!(gauges.get(name).and_then(Json::as_i64), Some(*v), "{name}");
        }
        let hists = match parsed.get("histograms").unwrap() {
            Json::Arr(items) => items,
            other => panic!("histograms must be an array, got {other:?}"),
        };
        assert_eq!(hists.len(), snap.histograms.len());
        for (got, want) in hists.iter().zip(&snap.histograms) {
            assert_eq!(
                got.get("name").and_then(Json::as_str),
                Some(want.name.as_str())
            );
            assert_eq!(got.get("count").and_then(Json::as_u64), Some(want.count));
            assert_eq!(got.get("sum").and_then(Json::as_u64), Some(want.sum));
            let buckets = match got.get("buckets").unwrap() {
                Json::Arr(items) => items,
                other => panic!("buckets must be an array, got {other:?}"),
            };
            assert_eq!(buckets.len(), want.buckets.len(), "{}", want.name);
            let mut bucket_total = 0;
            for (b, &(le, count)) in buckets.iter().zip(&want.buckets) {
                assert_eq!(
                    b.get("le").and_then(Json::as_u64),
                    Some(le.min(i64::MAX as u64))
                );
                assert_eq!(b.get("count").and_then(Json::as_u64), Some(count));
                bucket_total += count;
            }
            // The satellite invariant, re-checked on the wire form:
            // bucket counts sum to the sample count.
            assert_eq!(bucket_total, want.count, "{}", want.name);
        }
    }

    #[test]
    fn a_disabled_registry_serializes_as_empty_sections() {
        let snap = MetricsRegistry::disabled().snapshot();
        let line = metrics_to_json(&snap).to_line();
        assert_eq!(line, r#"{"counters":{},"gauges":{},"histograms":[]}"#);
    }
}
