//! The transport layer: an epoll event-loop TCP server and a stdio loop,
//! both speaking the JSON-lines protocol over a shared [`Scheduler`].
//!
//! One event-loop thread owns the listener and every client connection
//! (see [`crate::event_loop`] for the readiness model); there are no
//! per-connection threads to leak, and `stop()`/`shutdown` interrupt the
//! loop immediately through an eventfd waker instead of waiting out a
//! poll tick. Stopping drains: requests accepted before the stop still
//! get their responses, then [`ServerHandle::join`] checkpoints every
//! running job through the scheduler — the durable store is always left
//! in a resumable state.
//!
//! Both transports frame requests through the same capped
//! [`LineBuffer`](crate::conn), so a line that grows past
//! [`MAX_REQUEST_BYTES`](crate::protocol::MAX_REQUEST_BYTES) without a
//! newline is answered with a typed `request-too-large` error instead of
//! being buffered without bound.

use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::conn::{Framed, LineBuffer};
use crate::event_loop::{self, ServeOptions};
use crate::json::Json;
use crate::protocol::{
    error_response, error_response_for, ok_response, Request, ServeError, ERR_REQUEST_TOO_LARGE,
    MAX_REQUEST_BYTES,
};
use crate::scheduler::Scheduler;
use crate::sys::Waker;

/// Dispatches one protocol line against the scheduler. Returns the
/// response and whether the line was a (successful) shutdown request.
pub fn handle_line(sched: &Scheduler, line: &str) -> (Json, bool) {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => return (error_response(&e), false),
    };
    let status_fields = |s: &crate::scheduler::JobStatus| match s.to_json() {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("status is an object"),
    };
    let with_status = |r: Result<crate::scheduler::JobStatus, String>| -> (Json, bool) {
        match r {
            Ok(s) => {
                let extra: Vec<(String, Json)> = status_fields(&s);
                let mut pairs = vec![
                    ("v".to_owned(), Json::Int(crate::protocol::PROTOCOL_VERSION)),
                    ("ok".to_owned(), Json::Bool(true)),
                ];
                pairs.extend(extra);
                (Json::Obj(pairs), false)
            }
            Err(e) => (error_response(&e), false),
        }
    };
    match req {
        Request::Submit(spec) => match sched.submit(spec) {
            Ok(id) => (ok_response(vec![("job", Json::Int(id as i64))]), false),
            Err(e) => (error_response_for(&e), false),
        },
        Request::Status(Some(id)) => with_status(sched.status(id)),
        Request::Status(None) => {
            let jobs = sched.status_all().iter().map(|s| s.to_json()).collect();
            (ok_response(vec![("jobs", Json::Arr(jobs))]), false)
        }
        Request::Cancel(id) => with_status(sched.cancel(id)),
        Request::Pause(id) => with_status(sched.pause(id)),
        Request::Resume(id) => with_status(sched.resume(id)),
        Request::Inject { job, input } => match sched.inject(job, &input) {
            Ok(total) => (
                ok_response(vec![
                    ("job", Json::Int(job as i64)),
                    ("injections", Json::Int(total as i64)),
                ]),
                false,
            ),
            Err(e) => (error_response(&e), false),
        },
        Request::Report(id) => match sched.report(id) {
            Ok(report) => (
                ok_response(vec![("job", Json::Int(id as i64)), ("report", report)]),
                false,
            ),
            Err(e) => (error_response(&e), false),
        },
        Request::Stats => {
            let process = crate::stats::metrics_to_json(&cpr_obs::global().snapshot());
            (
                ok_response(vec![
                    ("stats_version", Json::Int(crate::stats::STATS_VERSION)),
                    ("process", process),
                    ("fleet", sched.fleet_stats()),
                    ("jobs", sched.job_stats()),
                ]),
                false,
            )
        }
        Request::Shutdown => (ok_response(vec![]), true),
    }
}

/// A running TCP server.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    event_thread: Option<JoinHandle<()>>,
    scheduler: Arc<Scheduler>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a stop without a client round trip (the programmatic
    /// equivalent of a `shutdown` request). The waker interrupts
    /// `epoll_wait` immediately; the event loop then drains in-flight
    /// connections before exiting.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Waits for the event loop to drain and exit, then shuts the
    /// scheduler down (checkpointing running jobs).
    pub fn join(mut self) {
        if let Some(t) = self.event_thread.take() {
            let _ = t.join();
        }
        self.scheduler.shutdown();
    }
}

/// Binds `addr` and serves connections until a `shutdown` request (or
/// [`ServerHandle::stop`]) with default [`ServeOptions`]. One event-loop
/// thread multiplexes every connection; requests within a connection are
/// handled in order.
pub fn serve_tcp(addr: impl ToSocketAddrs, scheduler: Scheduler) -> io::Result<ServerHandle> {
    serve_tcp_with(addr, scheduler, ServeOptions::default())
}

/// [`serve_tcp`] with explicit transport options (connection bound, drain
/// windows).
pub fn serve_tcp_with(
    addr: impl ToSocketAddrs,
    scheduler: Scheduler,
    opts: ServeOptions,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let waker = Arc::new(Waker::new()?);
    let scheduler = Arc::new(scheduler);

    let loop_stop = Arc::clone(&stop);
    let loop_waker = Arc::clone(&waker);
    let loop_sched = Arc::clone(&scheduler);
    let event_thread = std::thread::spawn(move || {
        let _ = event_loop::run(listener, &loop_sched, &loop_stop, &loop_waker, &opts);
    });

    Ok(ServerHandle {
        addr,
        stop,
        waker,
        event_thread: Some(event_thread),
        scheduler,
    })
}

/// Serves the protocol over arbitrary line streams (the `--stdio` mode of
/// `cpr serve`): reads requests from `input` until EOF or a `shutdown`
/// request, writing one response line each to `output`. Returns whether a
/// shutdown was requested (as opposed to plain EOF).
///
/// Requests are framed through the same capped [`LineBuffer`] as TCP: a
/// line past [`MAX_REQUEST_BYTES`] draws a typed `request-too-large`
/// error, the rest of that line is discarded, and serving continues with
/// the next line (unlike TCP, which closes the connection — stdio has no
/// connection to close).
pub fn serve_lines(
    scheduler: &Scheduler,
    mut input: impl BufRead,
    mut output: impl Write,
) -> io::Result<bool> {
    let mut frames = LineBuffer::new();
    let respond = |line: &str, output: &mut dyn Write| -> io::Result<Option<bool>> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(None);
        }
        let (response, shutdown) = handle_line(scheduler, trimmed);
        let mut out = response.to_line();
        out.push('\n');
        output.write_all(out.as_bytes())?;
        output.flush()?;
        Ok(Some(shutdown))
    };
    loop {
        let chunk = input.fill_buf()?;
        let eof = chunk.is_empty();
        let n = chunk.len();
        frames.push(chunk);
        input.consume(n);
        while let Some(frame) = frames.next() {
            match frame {
                Framed::Line(line) => {
                    if respond(&line, &mut output)? == Some(true) {
                        return Ok(true);
                    }
                }
                Framed::TooLarge => {
                    let err = ServeError::coded(
                        ERR_REQUEST_TOO_LARGE,
                        format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
                    );
                    let mut out = error_response_for(&err).to_line();
                    out.push('\n');
                    output.write_all(out.as_bytes())?;
                    output.flush()?;
                }
            }
        }
        if eof {
            // A final request without a trailing newline still counts, as
            // `BufRead::lines` always treated it.
            if let Some(line) = frames.take_partial() {
                if respond(&line, &mut output)? == Some(true) {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SnapshotStore;
    use std::io::{BufReader, Read as _};
    use std::time::Duration;

    fn temp_scheduler(tag: &str) -> Scheduler {
        let dir =
            std::env::temp_dir().join(format!("cpr_serve_server_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scheduler::new(1, SnapshotStore::open(dir).unwrap())
    }

    #[test]
    fn handle_line_maps_protocol_errors_to_responses() {
        let sched = temp_scheduler("errors");
        for bad in ["nope", "{\"v\":1}", "{\"v\":9,\"cmd\":\"status\"}"] {
            let (resp, shutdown) = handle_line(&sched, bad);
            assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false), "{bad}");
            assert!(!shutdown);
        }
        let (resp, _) = handle_line(&sched, r#"{"v":1,"cmd":"report","job":42}"#);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        sched.shutdown();
    }

    #[test]
    fn tcp_request_straddling_read_timeouts_is_not_corrupted() {
        let handle = serve_tcp("127.0.0.1:0", temp_scheduler("straddle")).unwrap();
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        // Send one request in two segments with a long gap, so the server
        // sees a partial line on one readiness edge and the rest on a
        // later one — the frame must reassemble across edges.
        let request = b"{\"v\":1,\"cmd\":\"status\"}\n";
        stream.write_all(&request[..9]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(600));
        stream.write_all(&request[9..]).unwrap();
        stream.flush().unwrap();

        let mut reply = String::new();
        BufReader::new(&stream).read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":true"), "got: {reply}");
        assert!(reply.contains("\"jobs\":[]"), "got: {reply}");

        handle.stop();
        handle.join();
    }

    #[test]
    fn a_response_in_flight_at_stop_is_still_delivered() {
        // Regression for the detached-connection-thread bug: a request
        // whose bytes arrive at the instant of `stop()` must still be
        // answered before the server exits — the drain phase keeps
        // serving accepted connections instead of abandoning them.
        let handle = serve_tcp("127.0.0.1:0", temp_scheduler("inflight")).unwrap();
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(b"{\"v\":1,\"cmd\":\"status\"}\n").unwrap();
        stream.flush().unwrap();
        // Stop immediately — with high probability the request is still
        // in flight (unread, possibly still in kernel buffers).
        handle.stop();

        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reply = String::new();
        BufReader::new(&stream).read_line(&mut reply).unwrap();
        assert!(
            reply.contains("\"ok\":true") && reply.contains("\"jobs\":[]"),
            "in-flight request lost at shutdown; got: {reply:?}"
        );
        handle.join();
    }

    #[test]
    fn an_oversized_tcp_request_draws_a_typed_error_and_a_close() {
        let handle = serve_tcp("127.0.0.1:0", temp_scheduler("toolarge")).unwrap();
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // A "request" that never terminates: the cap must end it, not RAM.
        let blob = vec![b'x'; MAX_REQUEST_BYTES + 4096];
        stream.write_all(&blob).unwrap();
        stream.flush().unwrap();

        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":false"), "got: {reply}");
        assert!(
            reply.contains(&format!("\"code\":\"{ERR_REQUEST_TOO_LARGE}\"")),
            "expected typed code, got: {reply}"
        );
        // The server hangs up on the offender after responding.
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection should be closed");

        handle.stop();
        handle.join();
    }

    #[test]
    fn connections_past_the_admission_bound_are_bounced_with_overloaded() {
        let sched = temp_scheduler("connbound");
        let handle = serve_tcp_with(
            "127.0.0.1:0",
            sched,
            ServeOptions {
                max_connections: 1,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        // First connection is admitted and must keep working even while
        // later ones are bounced.
        let mut admitted = std::net::TcpStream::connect(handle.addr()).unwrap();
        admitted
            .write_all(b"{\"v\":1,\"cmd\":\"status\"}\n")
            .unwrap();
        let mut reply = String::new();
        let mut admitted_reader = BufReader::new(admitted.try_clone().unwrap());
        admitted_reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":true"), "got: {reply}");

        let bounced = std::net::TcpStream::connect(handle.addr()).unwrap();
        bounced
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut goodbye = String::new();
        BufReader::new(&bounced).read_line(&mut goodbye).unwrap();
        assert!(
            goodbye.contains("\"code\":\"overloaded\""),
            "expected typed overloaded bounce, got: {goodbye:?}"
        );

        // The admitted connection is unaffected.
        reply.clear();
        admitted
            .write_all(b"{\"v\":1,\"cmd\":\"status\"}\n")
            .unwrap();
        admitted_reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":true"), "got: {reply}");

        handle.stop();
        handle.join();
    }

    #[test]
    fn serve_lines_answers_status_and_stops_on_shutdown() {
        let sched = temp_scheduler("stdio");
        let input = "\n{\"v\":1,\"cmd\":\"status\"}\n{\"v\":1,\"cmd\":\"shutdown\"}\n\
                     {\"v\":1,\"cmd\":\"status\"}\n";
        let mut out = Vec::new();
        let shutdown = serve_lines(&sched, input.as_bytes(), &mut out).unwrap();
        assert!(shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        // Blank line skipped; the trailing status after shutdown is never
        // read.
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"jobs\":[]"));
        assert!(lines[1].contains("\"ok\":true"));
        sched.shutdown();
    }

    #[test]
    fn serve_lines_caps_oversized_requests_and_keeps_serving() {
        let sched = temp_scheduler("stdiocap");
        let mut input = vec![b'x'; MAX_REQUEST_BYTES + 4096];
        input.push(b'\n');
        input.extend_from_slice(b"{\"v\":1,\"cmd\":\"status\"}\n");
        let mut out = Vec::new();
        let shutdown = serve_lines(&sched, &input[..], &mut out).unwrap();
        assert!(!shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains(&format!("\"code\":\"{ERR_REQUEST_TOO_LARGE}\"")),
            "got: {}",
            lines[0]
        );
        // Unlike TCP there is no connection to close: the next request on
        // the stream is served normally.
        assert!(lines[1].contains("\"jobs\":[]"), "got: {}", lines[1]);
        sched.shutdown();
    }
}
