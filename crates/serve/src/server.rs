//! The transport layer: a thread-per-connection TCP listener and a stdio
//! loop, both speaking the JSON-lines protocol over a shared
//! [`Scheduler`].
//!
//! The accept loop polls a non-blocking listener so a `shutdown` request
//! (from any connection) can stop it promptly; connection readers use a
//! short read timeout for the same reason. Shutting down checkpoints every
//! running job through the scheduler before the server handle's `join`
//! returns — the durable store is always left in a resumable state.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::Json;
use crate::protocol::{error_response, ok_response, Request};
use crate::scheduler::Scheduler;

/// Dispatches one protocol line against the scheduler. Returns the
/// response and whether the line was a (successful) shutdown request.
pub fn handle_line(sched: &Scheduler, line: &str) -> (Json, bool) {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => return (error_response(&e), false),
    };
    let status_fields = |s: &crate::scheduler::JobStatus| match s.to_json() {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("status is an object"),
    };
    let with_status = |r: Result<crate::scheduler::JobStatus, String>| -> (Json, bool) {
        match r {
            Ok(s) => {
                let extra: Vec<(String, Json)> = status_fields(&s);
                let mut pairs = vec![
                    ("v".to_owned(), Json::Int(crate::protocol::PROTOCOL_VERSION)),
                    ("ok".to_owned(), Json::Bool(true)),
                ];
                pairs.extend(extra);
                (Json::Obj(pairs), false)
            }
            Err(e) => (error_response(&e), false),
        }
    };
    match req {
        Request::Submit(spec) => match sched.submit(spec) {
            Ok(id) => (ok_response(vec![("job", Json::Int(id as i64))]), false),
            Err(e) => (error_response(&e), false),
        },
        Request::Status(Some(id)) => with_status(sched.status(id)),
        Request::Status(None) => {
            let jobs = sched.status_all().iter().map(|s| s.to_json()).collect();
            (ok_response(vec![("jobs", Json::Arr(jobs))]), false)
        }
        Request::Cancel(id) => with_status(sched.cancel(id)),
        Request::Pause(id) => with_status(sched.pause(id)),
        Request::Resume(id) => with_status(sched.resume(id)),
        Request::Inject { job, input } => match sched.inject(job, &input) {
            Ok(total) => (
                ok_response(vec![
                    ("job", Json::Int(job as i64)),
                    ("injections", Json::Int(total as i64)),
                ]),
                false,
            ),
            Err(e) => (error_response(&e), false),
        },
        Request::Report(id) => match sched.report(id) {
            Ok(report) => (
                ok_response(vec![("job", Json::Int(id as i64)), ("report", report)]),
                false,
            ),
            Err(e) => (error_response(&e), false),
        },
        Request::Stats => {
            let process = crate::stats::metrics_to_json(&cpr_obs::global().snapshot());
            (
                ok_response(vec![
                    ("stats_version", Json::Int(crate::stats::STATS_VERSION)),
                    ("process", process),
                    ("fleet", sched.fleet_stats()),
                    ("jobs", sched.job_stats()),
                ]),
                false,
            )
        }
        Request::Shutdown => (ok_response(vec![]), true),
    }
}

/// A running TCP server.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler: Arc<Scheduler>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a stop without a client round trip (the programmatic
    /// equivalent of a `shutdown` request).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop to exit, then shuts the scheduler down
    /// (checkpointing running jobs).
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.scheduler.shutdown();
    }
}

/// Binds `addr` and serves connections until a `shutdown` request (or
/// [`ServerHandle::stop`]). Each connection gets its own thread; requests
/// within a connection are handled in order.
pub fn serve_tcp(addr: impl ToSocketAddrs, scheduler: Scheduler) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let scheduler = Arc::new(scheduler);

    let accept_stop = Arc::clone(&stop);
    let accept_sched = Arc::clone(&scheduler);
    let accept_thread = std::thread::spawn(move || {
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let sched = Arc::clone(&accept_sched);
                    let stop = Arc::clone(&accept_stop);
                    std::thread::spawn(move || serve_connection(stream, &sched, &stop));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
    });

    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        scheduler,
    })
}

fn serve_connection(stream: TcpStream, sched: &Scheduler, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // `read_line` appends, and the read timeout can interrupt it
        // mid-line with a WouldBlock/TimedOut after partial bytes have
        // already landed in `line` — so the buffer is only cleared after a
        // complete line is processed, letting a request whose bytes
        // straddle timeout windows accumulate across wakeups.
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let (response, shutdown) = handle_line(sched, trimmed);
                    let mut out = response.to_line();
                    out.push('\n');
                    if writer.write_all(out.as_bytes()).is_err() {
                        return;
                    }
                    if shutdown {
                        stop.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Serves the protocol over arbitrary line streams (the `--stdio` mode of
/// `cpr serve`): reads requests from `input` until EOF or a `shutdown`
/// request, writing one response line each to `output`. Returns whether a
/// shutdown was requested (as opposed to plain EOF).
pub fn serve_lines(
    scheduler: &Scheduler,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<bool> {
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (response, shutdown) = handle_line(scheduler, trimmed);
        let mut out = response.to_line();
        out.push('\n');
        output.write_all(out.as_bytes())?;
        output.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SnapshotStore;

    fn temp_scheduler(tag: &str) -> Scheduler {
        let dir =
            std::env::temp_dir().join(format!("cpr_serve_server_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scheduler::new(1, SnapshotStore::open(dir).unwrap())
    }

    #[test]
    fn handle_line_maps_protocol_errors_to_responses() {
        let sched = temp_scheduler("errors");
        for bad in ["nope", "{\"v\":1}", "{\"v\":9,\"cmd\":\"status\"}"] {
            let (resp, shutdown) = handle_line(&sched, bad);
            assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false), "{bad}");
            assert!(!shutdown);
        }
        let (resp, _) = handle_line(&sched, r#"{"v":1,"cmd":"report","job":42}"#);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        sched.shutdown();
    }

    #[test]
    fn tcp_request_straddling_read_timeouts_is_not_corrupted() {
        use std::io::{BufRead as _, BufReader, Write as _};

        let handle = serve_tcp("127.0.0.1:0", temp_scheduler("straddle")).unwrap();
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        // Send one request in two segments with a gap longer than the
        // server's 200ms read timeout, so the reader wakes up mid-line at
        // least once with only a partial request buffered.
        let request = b"{\"v\":1,\"cmd\":\"status\"}\n";
        stream.write_all(&request[..9]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(600));
        stream.write_all(&request[9..]).unwrap();
        stream.flush().unwrap();

        let mut reply = String::new();
        BufReader::new(&stream).read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":true"), "got: {reply}");
        assert!(reply.contains("\"jobs\":[]"), "got: {reply}");

        handle.stop();
        handle.join();
    }

    #[test]
    fn serve_lines_answers_status_and_stops_on_shutdown() {
        let sched = temp_scheduler("stdio");
        let input = "\n{\"v\":1,\"cmd\":\"status\"}\n{\"v\":1,\"cmd\":\"shutdown\"}\n\
                     {\"v\":1,\"cmd\":\"status\"}\n";
        let mut out = Vec::new();
        let shutdown = serve_lines(&sched, input.as_bytes(), &mut out).unwrap();
        assert!(shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        // Blank line skipped; the trailing status after shutdown is never
        // read.
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"jobs\":[]"));
        assert!(lines[1].contains("\"ok\":true"));
        sched.shutdown();
    }
}
