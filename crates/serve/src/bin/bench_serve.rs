//! Service benchmark: 8 concurrent jobs on a 4-worker scheduler versus
//! the same 8 jobs run sequentially with direct `repair()` calls.
//!
//! What the headline number measures — stated plainly so the JSON cannot
//! be mistaken for a parallelism benchmark: **warm-resume speedup**, the
//! win from the subsystem's durable checkpoint reuse, not raw scheduler
//! throughput (this container has 1 CPU, recorded honestly in the output,
//! as every BENCH_*.json here does). The scenario is a server's steady
//! state: each submitted job names, via the protocol's explicit
//! `resume_from` field, a checkpoint near completion that an earlier run
//! parked in the snapshot store. The served jobs resume those checkpoints
//! bit-identically and only pay for the remaining tail of the work, while
//! the sequential baseline recomputes every run from scratch — exactly
//! the cost model that makes repair-as-a-service worth having for an
//! anytime algorithm.
//!
//! The benchmark asserts, before reporting any timing, that every served
//! job's report is identical (minus wall clock) to the direct `repair()`
//! report for the same spec.
//!
//! Writes `BENCH_serve.json` into the current directory (the repo root
//! when run via `cargo run -p cpr-serve --bin bench_serve`). With
//! `--check`, runs a reduced workload, asserts the same invariants, and
//! writes nothing — the CI mode.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cpr_core::{RepairDriver, StepStatus};
use cpr_serve::scheduler::DEFAULT_CHECKPOINT_EVERY;
use cpr_serve::{
    job_config, job_problem, report_fingerprint, report_to_json, JobSpec, JobState, Scheduler,
    SnapshotStore,
};
use cpr_subjects::all_subjects;

fn specs(jobs: usize, max_iterations: usize) -> Vec<JobSpec> {
    let subjects = all_subjects();
    let supported: Vec<String> = subjects
        .iter()
        .filter(|s| !s.not_supported)
        .take(4)
        .map(|s| s.name())
        .collect();
    assert!(!supported.is_empty(), "no supported subjects");
    (0..jobs)
        .map(|i| {
            let mut spec = JobSpec::new(supported[i % supported.len()].clone());
            spec.max_iterations = Some(max_iterations);
            spec.threads = Some(1);
            spec.checkpoint_every = Some(DEFAULT_CHECKPOINT_EVERY);
            spec
        })
        .collect()
}

/// Steps a fresh driver to completion, returning the step count and the
/// report fingerprint — the ground truth for one spec.
fn run_direct(spec: &JobSpec) -> (usize, String) {
    let mut driver = RepairDriver::new(job_problem(spec).unwrap(), job_config(spec));
    let mut steps = 0usize;
    while driver.step() == StepStatus::Running {
        steps += 1;
    }
    (steps, report_fingerprint(&report_to_json(&driver.finish())))
}

/// Writes the near-completion checkpoint for one seed job id into the
/// store: a fresh driver stepped to one step before its stopping point,
/// snapshotted durably — the steady state a long-lived server accumulates
/// on its own. Served specs then claim these checkpoints explicitly with
/// `resume_from` (a fresh submit never adopts a stored snapshot
/// implicitly).
fn prep_checkpoint(store: &SnapshotStore, job: u64, spec: &JobSpec, total_steps: usize) -> usize {
    let mut driver = RepairDriver::new(job_problem(spec).unwrap(), job_config(spec));
    let prefix = total_steps.saturating_sub(1);
    for _ in 0..prefix {
        assert_eq!(
            driver.step(),
            StepStatus::Running,
            "prefix shorter than run"
        );
    }
    store
        .save(job, &driver.snapshot())
        .expect("write checkpoint");
    prefix
}

struct Outcome {
    millis: f64,
    fingerprints: Vec<String>,
}

fn run_sequential(specs: &[JobSpec]) -> Outcome {
    let start = Instant::now();
    let fingerprints = specs
        .iter()
        .map(|spec| {
            let report = cpr_core::repair(&job_problem(spec).unwrap(), &job_config(spec));
            report_fingerprint(&report_to_json(&report))
        })
        .collect();
    Outcome {
        millis: start.elapsed().as_secs_f64() * 1e3,
        fingerprints,
    }
}

fn run_served(specs: &[JobSpec], workers: usize, store: SnapshotStore) -> Outcome {
    let sched = Scheduler::new(workers, store);
    let start = Instant::now();
    let ids: Vec<u64> = specs
        .iter()
        .map(|spec| sched.submit(spec.clone()).expect("submit"))
        .collect();
    let mut fingerprints = Vec::new();
    for &id in &ids {
        let status = sched.wait(id, Duration::from_secs(1800)).expect("wait");
        assert_eq!(
            status.state,
            JobState::Done,
            "job {id} ended {} ({:?})",
            status.state.name(),
            status.error
        );
        fingerprints.push(report_fingerprint(&sched.report(id).expect("report")));
    }
    let millis = start.elapsed().as_secs_f64() * 1e3;
    sched.shutdown();
    Outcome {
        millis,
        fingerprints,
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let (jobs, workers, max_iterations) = if check { (2, 2, 6) } else { (8, 4, 12) };
    let specs = specs(jobs, max_iterations);

    let store_dir = std::env::temp_dir().join(format!("cpr_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SnapshotStore::open(&store_dir).expect("open store");

    // Ground truth per spec: total steps and the direct-report
    // fingerprint. The same pass populates the server's warm store under
    // seed ids 1..; each served spec claims its seed checkpoint with
    // `resume_from` — the new jobs themselves get ids past the seeds.
    let mut resumed_steps = 0usize;
    let mut total_steps = 0usize;
    let mut direct = Vec::new();
    let mut served_specs = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let seed_id = i as u64 + 1;
        let (steps, fp) = run_direct(spec);
        resumed_steps += steps - prep_checkpoint(&store, seed_id, spec, steps);
        total_steps += steps;
        direct.push(fp);
        let mut warm = spec.clone();
        warm.resume_from = Some(seed_id);
        served_specs.push(warm);
    }

    let sequential = run_sequential(&specs);
    let served = run_served(&served_specs, workers, store);

    // Identity first, timing second: every path — direct repair(), the
    // sequential baseline, and the served warm resume — must produce the
    // same report minus wall clock.
    assert_eq!(direct, sequential.fingerprints, "sequential diverged");
    assert_eq!(direct, served.fingerprints, "served reports diverged");

    let speedup = sequential.millis / served.millis;
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "[bench_serve] {jobs} jobs: sequential-cold {:.0} ms, served-warm ({workers} workers) \
         {:.0} ms -> {speedup:.2}x warm-resume speedup; {resumed_steps}/{total_steps} steps \
         resumed, reports identical",
        sequential.millis, served.millis
    );

    if check {
        assert!(speedup > 0.0, "nonsensical speedup {speedup}");
        println!("bench_serve --check: OK ({jobs} jobs, reports identical)");
        let _ = std::fs::remove_dir_all(&store_dir);
        return;
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve\",");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"max_iterations\": {max_iterations},");
    let _ = writeln!(
        json,
        "  \"method\": \"steady-state warm resume: each served job explicitly adopts (via \
         resume_from) a durable checkpoint one step before completion, as a long-lived server \
         accumulates; the sequential baseline runs every job cold with direct repair(). The \
         headline measures checkpoint reuse, not scheduler parallelism\","
    );
    let _ = writeln!(json, "  \"total_steps\": {total_steps},");
    let _ = writeln!(json, "  \"resumed_steps\": {resumed_steps},");
    let _ = writeln!(json, "  \"reports_identical_to_direct_repair\": true,");
    let _ = writeln!(json, "  \"configs\": [");
    let _ = writeln!(
        json,
        "    {{\"label\": \"sequential-cold-direct\", \"workers\": 1, \"millis\": {:.1}}},",
        sequential.millis
    );
    let _ = writeln!(
        json,
        "    {{\"label\": \"served-warm-resume\", \"workers\": {workers}, \"millis\": {:.1}}}",
        served.millis
    );
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"warm_resume_speedup_vs_cold_sequential\": {speedup:.2}"
    );
    json.push_str("}\n");

    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");
    let _ = std::fs::remove_dir_all(&store_dir);
    assert!(
        speedup >= 2.0,
        "acceptance: warm-resume speedup must be >= 2x cold sequential (got {speedup:.2}x)"
    );
}
