//! Service benchmarks: warm-resume reuse and serving-tier throughput.
//!
//! Two scenarios, both gated on report identity before any timing is
//! reported:
//!
//! 1. **Warm resume** — 8 concurrent jobs on a 4-worker scheduler versus
//!    the same 8 jobs run sequentially with direct `repair()` calls. The
//!    headline number is the win from durable checkpoint reuse, not raw
//!    scheduler throughput (this container has 1 CPU, recorded honestly
//!    in the output, as every BENCH_*.json here does): each submitted job
//!    names, via the protocol's explicit `resume_from` field, a
//!    checkpoint near completion that an earlier run parked in the
//!    snapshot store, while the sequential baseline recomputes every run
//!    from scratch — exactly the cost model that makes
//!    repair-as-a-service worth having for an anytime algorithm.
//!
//! 2. **Many connections** — the serving-tier scenario from ROADMAP item
//!    1: many concurrent clients, small requests, high connection churn
//!    (each round is connect → request → close, the worst case for an
//!    accept path). The same load runs against the epoll event-loop
//!    server and against an in-bench reimplementation of the transport it
//!    replaced — a 10 ms polled nonblocking accept spawning one detached
//!    thread per connection — over identical schedulers. Reported as
//!    throughput (requests/s) and p50/p99 request latency; the full run
//!    asserts the epoll tier beats the thread-per-connection baseline.
//!    An identity leg first submits real (small) jobs over TCP and
//!    asserts the served reports equal direct `repair()` reports.
//!
//! Writes `BENCH_serve.json` into the current directory (the repo root
//! when run via `cargo run -p cpr-serve --bin bench_serve`). With
//! `--check`, runs a reduced workload, asserts the same identity
//! invariants (but no timing thresholds — CI machines are noisy), and
//! writes nothing — the CI mode.

use std::fmt::Write as _;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cpr_core::{RepairDriver, StepStatus};
use cpr_serve::scheduler::DEFAULT_CHECKPOINT_EVERY;
use cpr_serve::{
    handle_line, job_config, job_problem, report_fingerprint, report_to_json, serve_tcp, Client,
    JobSpec, JobState, Scheduler, SnapshotStore,
};
use cpr_subjects::all_subjects;

fn specs(jobs: usize, max_iterations: usize) -> Vec<JobSpec> {
    let subjects = all_subjects();
    let supported: Vec<String> = subjects
        .iter()
        .filter(|s| !s.not_supported)
        .take(4)
        .map(|s| s.name())
        .collect();
    assert!(!supported.is_empty(), "no supported subjects");
    (0..jobs)
        .map(|i| {
            let mut spec = JobSpec::new(supported[i % supported.len()].clone());
            spec.max_iterations = Some(max_iterations);
            spec.threads = Some(1);
            spec.checkpoint_every = Some(DEFAULT_CHECKPOINT_EVERY);
            spec
        })
        .collect()
}

/// Steps a fresh driver to completion, returning the step count and the
/// report fingerprint — the ground truth for one spec.
fn run_direct(spec: &JobSpec) -> (usize, String) {
    let mut driver = RepairDriver::new(job_problem(spec).unwrap(), job_config(spec));
    let mut steps = 0usize;
    while driver.step() == StepStatus::Running {
        steps += 1;
    }
    (steps, report_fingerprint(&report_to_json(&driver.finish())))
}

/// Writes the near-completion checkpoint for one seed job id into the
/// store: a fresh driver stepped to one step before its stopping point,
/// snapshotted durably — the steady state a long-lived server accumulates
/// on its own. Served specs then claim these checkpoints explicitly with
/// `resume_from` (a fresh submit never adopts a stored snapshot
/// implicitly).
fn prep_checkpoint(store: &SnapshotStore, job: u64, spec: &JobSpec, total_steps: usize) -> usize {
    let mut driver = RepairDriver::new(job_problem(spec).unwrap(), job_config(spec));
    let prefix = total_steps.saturating_sub(1);
    for _ in 0..prefix {
        assert_eq!(
            driver.step(),
            StepStatus::Running,
            "prefix shorter than run"
        );
    }
    store
        .save(job, &driver.snapshot())
        .expect("write checkpoint");
    prefix
}

struct Outcome {
    millis: f64,
    fingerprints: Vec<String>,
}

fn run_sequential(specs: &[JobSpec]) -> Outcome {
    let start = Instant::now();
    let fingerprints = specs
        .iter()
        .map(|spec| {
            let report = cpr_core::repair(&job_problem(spec).unwrap(), &job_config(spec));
            report_fingerprint(&report_to_json(&report))
        })
        .collect();
    Outcome {
        millis: start.elapsed().as_secs_f64() * 1e3,
        fingerprints,
    }
}

fn run_served(specs: &[JobSpec], workers: usize, store: SnapshotStore) -> Outcome {
    let sched = Scheduler::new(workers, store);
    let start = Instant::now();
    let ids: Vec<u64> = specs
        .iter()
        .map(|spec| sched.submit(spec.clone()).expect("submit"))
        .collect();
    let mut fingerprints = Vec::new();
    for &id in &ids {
        let status = sched.wait(id, Duration::from_secs(1800)).expect("wait");
        assert_eq!(
            status.state,
            JobState::Done,
            "job {id} ended {} ({:?})",
            status.state.name(),
            status.error
        );
        fingerprints.push(report_fingerprint(&sched.report(id).expect("report")));
    }
    let millis = start.elapsed().as_secs_f64() * 1e3;
    sched.shutdown();
    Outcome {
        millis,
        fingerprints,
    }
}

/// The transport this PR replaced, reimplemented minimally for the
/// baseline leg: a 10 ms polled nonblocking accept loop spawning one
/// detached thread per connection, each a `BufReader::read_line` loop
/// with a 200 ms read timeout — byte-for-byte the same protocol over the
/// same [`handle_line`] and an identical scheduler, so the comparison
/// isolates the transport.
struct BaselineServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
    scheduler: Arc<Scheduler>,
}

impl BaselineServer {
    fn start(scheduler: Scheduler) -> BaselineServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind baseline");
        listener.set_nonblocking(true).expect("nonblocking");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let scheduler = Arc::new(scheduler);
        let accept_stop = Arc::clone(&stop);
        let accept_sched = Arc::clone(&scheduler);
        let accept_thread = std::thread::spawn(move || {
            while !accept_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let sched = Arc::clone(&accept_sched);
                        let stop = Arc::clone(&accept_stop);
                        std::thread::spawn(move || baseline_connection(stream, &sched, &stop));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        BaselineServer {
            addr,
            stop,
            accept_thread,
            scheduler,
        }
    }

    fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.accept_thread.join();
        self.scheduler.shutdown();
    }
}

fn baseline_connection(stream: TcpStream, sched: &Scheduler, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let (response, _) = handle_line(sched, trimmed);
                    let mut out = response.to_line();
                    out.push('\n');
                    if writer.write_all(out.as_bytes()).is_err() {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

struct ConnStats {
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    requests: usize,
}

/// Connection-churn load: `clients` concurrent threads, each doing
/// `rounds` of connect → one `status` request → read response → close.
/// Per-round latency covers the full cycle (the accept path included —
/// that is the point).
fn many_conn_load(addr: SocketAddr, clients: usize, rounds: usize) -> ConnStats {
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(clients * rounds));
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                let mut local = Vec::with_capacity(rounds);
                for _ in 0..rounds {
                    let t0 = Instant::now();
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .expect("timeout");
                    stream
                        .write_all(b"{\"v\":1,\"cmd\":\"status\"}\n")
                        .expect("request");
                    let mut reply = String::new();
                    BufReader::new(&stream)
                        .read_line(&mut reply)
                        .expect("response");
                    assert!(reply.contains("\"ok\":true"), "bad response: {reply}");
                    local.push(t0.elapsed());
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut lat = latencies.into_inner().unwrap();
    lat.sort();
    let requests = lat.len();
    let pct = |p: f64| -> f64 {
        let idx = ((requests as f64 * p).ceil() as usize).clamp(1, requests) - 1;
        lat[idx].as_secs_f64() * 1e3
    };
    ConnStats {
        rps: requests as f64 / elapsed,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        requests,
    }
}

fn temp_store(tag: &str) -> SnapshotStore {
    let dir = std::env::temp_dir().join(format!("cpr_bench_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    SnapshotStore::open(dir).expect("open store")
}

/// Identity leg of the serving-tier scenario: real (small) jobs submitted
/// over TCP through the epoll server must produce reports identical to
/// direct `repair()` calls on the same specs.
fn served_over_tcp_matches_direct(jobs: usize, workers: usize) {
    let specs = specs(jobs, 4);
    let handle = serve_tcp(
        "127.0.0.1:0",
        Scheduler::new(workers, temp_store("identity")),
    )
    .expect("serve_tcp");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let ids: Vec<u64> = specs
        .iter()
        .map(|spec| client.submit(spec.clone()).expect("submit"))
        .collect();
    for (spec, &id) in specs.iter().zip(&ids) {
        let status = client
            .wait_terminal(id, Duration::from_secs(1800))
            .expect("wait");
        assert_eq!(
            status.get("state").and_then(cpr_serve::Json::as_str),
            Some("done"),
            "job {id}: {status:?}"
        );
        let report = client.report(id).expect("report");
        let direct = report_to_json(&cpr_core::repair(
            &job_problem(spec).unwrap(),
            &job_config(spec),
        ));
        assert_eq!(
            report_fingerprint(&report),
            report_fingerprint(&direct),
            "served report for job {id} diverged from direct repair()"
        );
    }
    handle.stop();
    handle.join();
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let (jobs, workers, max_iterations) = if check { (2, 2, 6) } else { (8, 4, 12) };
    let (conn_clients, conn_rounds) = if check { (8, 3) } else { (128, 20) };
    let specs = specs(jobs, max_iterations);

    let store_dir = std::env::temp_dir().join(format!("cpr_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SnapshotStore::open(&store_dir).expect("open store");

    // Ground truth per spec: total steps and the direct-report
    // fingerprint. The same pass populates the server's warm store under
    // seed ids 1..; each served spec claims its seed checkpoint with
    // `resume_from` — the new jobs themselves get ids past the seeds.
    let mut resumed_steps = 0usize;
    let mut total_steps = 0usize;
    let mut direct = Vec::new();
    let mut served_specs = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let seed_id = i as u64 + 1;
        let (steps, fp) = run_direct(spec);
        resumed_steps += steps - prep_checkpoint(&store, seed_id, spec, steps);
        total_steps += steps;
        direct.push(fp);
        let mut warm = spec.clone();
        warm.resume_from = Some(seed_id);
        served_specs.push(warm);
    }

    let sequential = run_sequential(&specs);
    let served = run_served(&served_specs, workers, store);

    // Identity first, timing second: every path — direct repair(), the
    // sequential baseline, and the served warm resume — must produce the
    // same report minus wall clock.
    assert_eq!(direct, sequential.fingerprints, "sequential diverged");
    assert_eq!(direct, served.fingerprints, "served reports diverged");

    // Serving-tier identity: jobs served over real TCP connections equal
    // direct repair() too.
    served_over_tcp_matches_direct(if check { 2 } else { 4 }, 2);

    // Serving-tier throughput: identical connection-churn load against
    // the epoll event loop and the thread-per-connection baseline.
    let epoll_handle =
        serve_tcp("127.0.0.1:0", Scheduler::new(1, temp_store("epoll"))).expect("serve_tcp");
    let epoll = many_conn_load(epoll_handle.addr(), conn_clients, conn_rounds);
    epoll_handle.stop();
    epoll_handle.join();

    let baseline_server = BaselineServer::start(Scheduler::new(1, temp_store("baseline")));
    let baseline = many_conn_load(baseline_server.addr, conn_clients, conn_rounds);
    baseline_server.shutdown();

    let conn_speedup = epoll.rps / baseline.rps;
    let speedup = sequential.millis / served.millis;
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "[bench_serve] {jobs} jobs: sequential-cold {:.0} ms, served-warm ({workers} workers) \
         {:.0} ms -> {speedup:.2}x warm-resume speedup; {resumed_steps}/{total_steps} steps \
         resumed, reports identical",
        sequential.millis, served.millis
    );
    eprintln!(
        "[bench_serve] {conn_clients} clients x {conn_rounds} connect-request-close rounds: \
         epoll {:.0} req/s (p50 {:.2} ms, p99 {:.2} ms) vs thread-per-connection {:.0} req/s \
         (p50 {:.2} ms, p99 {:.2} ms) -> {conn_speedup:.2}x",
        epoll.rps, epoll.p50_ms, epoll.p99_ms, baseline.rps, baseline.p50_ms, baseline.p99_ms
    );

    if check {
        assert!(speedup > 0.0, "nonsensical speedup {speedup}");
        assert_eq!(epoll.requests, conn_clients * conn_rounds);
        assert_eq!(baseline.requests, conn_clients * conn_rounds);
        println!(
            "bench_serve --check: OK ({jobs} warm jobs + {} served-over-TCP requests, \
             reports identical)",
            epoll.requests
        );
        let _ = std::fs::remove_dir_all(&store_dir);
        return;
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve\",");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"max_iterations\": {max_iterations},");
    let _ = writeln!(
        json,
        "  \"method\": \"two scenarios, both gated on report identity with direct repair(). \
         warm_resume: each served job explicitly adopts (via resume_from) a durable checkpoint \
         one step before completion, as a long-lived server accumulates; the sequential baseline \
         runs every job cold — the headline measures checkpoint reuse, not scheduler \
         parallelism. many_connections: concurrent clients doing connect-request-close rounds \
         against the epoll event-loop server vs an in-bench reimplementation of the replaced \
         10ms-polled thread-per-connection transport, identical schedulers\","
    );
    let _ = writeln!(json, "  \"total_steps\": {total_steps},");
    let _ = writeln!(json, "  \"resumed_steps\": {resumed_steps},");
    let _ = writeln!(json, "  \"reports_identical_to_direct_repair\": true,");
    let _ = writeln!(json, "  \"configs\": [");
    let _ = writeln!(
        json,
        "    {{\"label\": \"sequential-cold-direct\", \"workers\": 1, \"millis\": {:.1}}},",
        sequential.millis
    );
    let _ = writeln!(
        json,
        "    {{\"label\": \"served-warm-resume\", \"workers\": {workers}, \"millis\": {:.1}}}",
        served.millis
    );
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"warm_resume_speedup_vs_cold_sequential\": {speedup:.2},"
    );
    let _ = writeln!(json, "  \"many_connections\": {{");
    let _ = writeln!(json, "    \"clients\": {conn_clients},");
    let _ = writeln!(json, "    \"rounds_per_client\": {conn_rounds},");
    let _ = writeln!(json, "    \"requests\": {},", epoll.requests);
    let _ = writeln!(json, "    \"configs\": [");
    let _ = writeln!(
        json,
        "      {{\"label\": \"epoll-event-loop\", \"rps\": {:.1}, \"p50_ms\": {:.2}, \
         \"p99_ms\": {:.2}}},",
        epoll.rps, epoll.p50_ms, epoll.p99_ms
    );
    let _ = writeln!(
        json,
        "      {{\"label\": \"thread-per-connection-baseline\", \"rps\": {:.1}, \
         \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}",
        baseline.rps, baseline.p50_ms, baseline.p99_ms
    );
    let _ = writeln!(json, "    ],");
    let _ = writeln!(
        json,
        "    \"epoll_speedup_vs_thread_per_connection\": {conn_speedup:.2}"
    );
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");
    let _ = std::fs::remove_dir_all(&store_dir);
    assert!(
        speedup >= 2.0,
        "acceptance: warm-resume speedup must be >= 2x cold sequential (got {speedup:.2}x)"
    );
    assert!(
        conn_speedup > 1.0,
        "acceptance: epoll serving tier must out-throughput the thread-per-connection baseline \
         (got {conn_speedup:.2}x)"
    );
}
