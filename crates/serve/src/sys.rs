//! Minimal Linux readiness-notification shim: `epoll` and `eventfd`
//! through direct foreign declarations against the C library the Rust
//! standard library already links — no external crate, matching the
//! repository's zero-dependency build.
//!
//! This is the only module in the workspace that uses `unsafe`, and every
//! unsafe block is a single foreign call with arguments owned by the
//! enclosing safe wrapper: file descriptors created here are closed by
//! `Drop`, event buffers are stack arrays sized by the caller, and errno
//! is read through `io::Error::last_os_error` immediately after each
//! call. Nothing unsafe escapes the module boundary.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

use std::ffi::{c_int, c_uint, c_void};

// Values from the Linux UAPI headers (stable ABI, identical across
// architectures).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
pub(crate) const EPOLLET: u32 = 1 << 31;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// `struct epoll_event`. The kernel packs it on x86-64 (`__EPOLL_PACKED`)
/// and leaves it naturally aligned elsewhere; mirror that exactly or
/// `epoll_wait` scribbles over the wrong offsets.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// What a registered descriptor should be watched for. Registration is
/// always edge-triggered (`EPOLLET`) with peer-hangup reporting
/// (`EPOLLRDHUP`); `ERR`/`HUP` are delivered unconditionally by the
/// kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake on readable (and on accepted connections for a listener).
    pub readable: bool,
    /// Wake on writable — registered only while output is pending.
    pub writable: bool,
}

impl Interest {
    fn mask(self) -> u32 {
        let mut m = EPOLLET | EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness event out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Data (or a new connection) is ready to read.
    pub readable: bool,
    /// The socket accepted more output.
    pub writable: bool,
    /// The peer closed or the descriptor errored; the owner should read
    /// to EOF and tear the connection down.
    pub hangup: bool,
}

/// A safe wrapper over one epoll instance.
#[derive(Debug)]
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
        let ptr = if event.is_some() {
            &mut ev as *mut EpollEvent
        } else {
            std::ptr::null_mut()
        };
        check(unsafe { epoll_ctl(self.fd, op, fd, ptr) }).map(|_| ())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Re-arms an already registered `fd` with new interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until readiness (or `timeout_ms`; negative blocks forever),
    /// appending events to `out`. Returns how many arrived. `EINTR`
    /// retries transparently.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const CAPACITY: usize = 64;
        let mut buf = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let n = loop {
            let ret =
                unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), CAPACITY as c_int, timeout_ms) };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &buf[..n] {
            let events = ev.events;
            out.push(Event {
                token: ev.data,
                readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: events & EPOLLOUT != 0,
                hangup: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = unsafe { close(self.fd) };
    }
}

/// A wakeup channel for interrupting [`Epoll::wait`] from another thread
/// — a nonblocking `eventfd` registered alongside the sockets, so
/// `stop()`/`shutdown` take effect immediately instead of on the next
/// timeout tick.
#[derive(Debug)]
pub(crate) struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates a nonblocking, close-on-exec eventfd.
    pub fn new() -> io::Result<Waker> {
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The descriptor to register with [`Epoll::add`].
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes any thread blocked in [`Epoll::wait`]. Saturation (the
    /// counter full) still leaves the fd readable, so a failed write is
    /// not an error worth surfacing.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { write(self.fd, (&one as *const u64).cast::<c_void>(), 8) };
    }

    /// Drains the counter so the next `wake` edge-triggers again.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        let _ = unsafe { read(self.fd, (&mut buf as *mut u64).cast::<c_void>(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        let _ = unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_interrupts_an_epoll_wait_and_drains_clean() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        epoll
            .add(
                waker.fd(),
                7,
                Interest {
                    readable: true,
                    writable: false,
                },
            )
            .unwrap();

        // Nothing pending: a zero timeout returns empty.
        let mut events = Vec::new();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        waker.wake();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Drained, the edge re-arms: quiet again, then one more wake fires.
        waker.drain();
        events.clear();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        waker.wake();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
    }

    #[test]
    fn sockets_report_read_write_readiness_and_hangup() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll
            .add(
                server.as_raw_fd(),
                1,
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .unwrap();

        // A fresh socket is writable; no input yet.
        let mut events = Vec::new();
        epoll.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        client.write_all(b"ping").unwrap();
        events.clear();
        epoll.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        // Peer close surfaces as a hangup-flavored event.
        drop(client);
        events.clear();
        epoll.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.hangup));

        epoll.delete(server.as_raw_fd()).unwrap();
    }
}
