//! The epoll-sharded serving tier's transport: one event-loop thread
//! drives the listener and every client connection through edge-triggered
//! readiness, replacing the polled accept loop and thread-per-connection
//! readers of the original server.
//!
//! # Readiness model
//!
//! Everything is registered edge-triggered (`EPOLLET`), so each wakeup
//! must exhaust its descriptor: accepts loop to `WouldBlock`, reads drain
//! the socket into the connection's [`LineBuffer`](crate::conn), writes
//! flush until the kernel pushes back. Write interest is registered only
//! while a connection has unflushed output. A nonblocking `eventfd` rides
//! in the same epoll set as a wakeup channel: `ServerHandle::stop` and
//! the `shutdown` verb interrupt `epoll_wait` immediately instead of
//! waiting out a timeout tick — when idle, the loop blocks indefinitely
//! and costs nothing.
//!
//! # Fault containment
//!
//! A failed accept must never kill the server (the old loop exited on any
//! non-`WouldBlock` error, so one transient `EMFILE` burst was fatal).
//! [`accept_error_disposition`] classifies errors into retry-now
//! (connection-level: the aborted connection is simply gone) and
//! backoff-then-retry (resource exhaustion: give the kernel a breath);
//! there is no fatal class.
//!
//! # Admission control
//!
//! Accepted connections are bounded ([`ServeOptions::max_connections`]);
//! past the bound a connection is answered with one typed `overloaded`
//! error line and closed, which clients can tell apart from a crash. The
//! job-queue bound lives in the scheduler for the same reason.
//!
//! # Drain state machine
//!
//! `running → draining → closed`. Entering drain (stop flag, `shutdown`
//! verb, or handle drop) deregisters the listener so nothing new is
//! accepted, then keeps serving: requests already accepted — including
//! bytes still in kernel buffers — are read, handled, and their responses
//! flushed. The loop exits when no connection has pending work and a
//! quiet window passes with no events (covering the instant between a
//! client's `write` and the bytes reaching our socket), or at a hard
//! deadline. Scheduler shutdown (checkpointing running jobs) happens
//! after, in `ServerHandle::join`, exactly as before.

use std::collections::BTreeMap;
use std::io;
use std::net::TcpListener;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpr_obs::{Counter, Gauge};

use crate::conn::{Conn, Framed, ReadStatus};
use crate::protocol::{error_response_for, ServeError, ERR_OVERLOADED, ERR_REQUEST_TOO_LARGE};
use crate::scheduler::Scheduler;
use crate::server::handle_line;
use crate::sys::{Epoll, Event, Interest, Waker};

/// Transport knobs for [`crate::serve_tcp_with`]. The defaults suit the
/// loopback tests and a small fleet; a front-line deployment raises
/// `max_connections`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bounded admission: connections accepted past this are answered
    /// with a typed `overloaded` error and closed.
    pub max_connections: usize,
    /// Drain quiet window: after a stop request, the loop keeps serving
    /// until no connection has pending work *and* this long passes with
    /// no readiness events, so requests in flight at the instant of the
    /// stop still get their responses.
    pub drain_grace: Duration,
    /// Hard ceiling on the whole drain phase.
    pub drain_deadline: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_connections: 1024,
            drain_grace: Duration::from_millis(75),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// How the accept loop should react to a failed `accept`. There is no
/// fatal variant by design: the listener itself does not become invalid
/// from any error `accept` reports at runtime, and a serving tier that
/// exits its accept loop on a transient condition is down forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcceptDisposition {
    /// Retry immediately: the error concerned the aborted connection, not
    /// the listener (`ECONNABORTED`, `EINTR`, ...).
    Continue,
    /// Back off briefly before retrying: resource exhaustion (`EMFILE`,
    /// `ENFILE`, `ENOBUFS`, `ENOMEM`) needs the kernel or the process to
    /// free something first; hot-looping would burn the CPU the recovery
    /// needs.
    Backoff,
}

pub(crate) fn accept_error_disposition(e: &io::Error) -> AcceptDisposition {
    match e.kind() {
        io::ErrorKind::ConnectionAborted
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::Interrupted => AcceptDisposition::Continue,
        _ => AcceptDisposition::Backoff,
    }
}

/// Epoll tokens for the two non-connection descriptors; connections use
/// their fd (always < 2^31) as token.
const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

struct LoopObs {
    accepted: Counter,
    accept_errors: Counter,
    accept_overloaded: Counter,
    request_too_large: Counter,
    conn_open: Gauge,
}

impl LoopObs {
    fn new() -> LoopObs {
        let reg = cpr_obs::global();
        LoopObs {
            accepted: reg.counter("serve.accept.accepted"),
            accept_errors: reg.counter("serve.accept.errors"),
            accept_overloaded: reg.counter("serve.accept.overloaded"),
            request_too_large: reg.counter("serve.conn.request_too_large"),
            conn_open: reg.gauge("serve.conn.open"),
        }
    }
}

/// The event loop proper. Runs on its own thread until a stop request
/// drains cleanly; returns only then.
pub(crate) fn run(
    listener: TcpListener,
    scheduler: &Arc<Scheduler>,
    stop: &AtomicBool,
    waker: &Waker,
    opts: &ServeOptions,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let read_only = Interest {
        readable: true,
        writable: false,
    };
    epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, read_only)?;
    epoll.add(waker.fd(), TOKEN_WAKER, read_only)?;

    let obs = LoopObs::new();
    let mut conns: BTreeMap<RawFd, Conn> = BTreeMap::new();
    let mut events: Vec<Event> = Vec::new();
    let mut draining = false;
    let mut drain_started = Instant::now();
    let mut last_event = Instant::now();

    loop {
        events.clear();
        // Idle costs nothing: block until readiness. While draining, tick
        // so the quiet-window check runs even with no events at all.
        let timeout_ms = if draining { 20 } else { -1 };
        let n = epoll.wait(&mut events, timeout_ms)?;
        if n > 0 {
            last_event = Instant::now();
        }

        for &ev in &events {
            match ev.token {
                TOKEN_WAKER => {
                    waker.drain();
                    // The flag, not the wake, is the signal (drop-time
                    // wakes race flag stores); checked below.
                }
                TOKEN_LISTENER => {
                    if !draining {
                        accept_ready(&listener, &epoll, &mut conns, opts, &obs);
                    }
                }
                token => {
                    let fd = token as RawFd;
                    let closed = conns
                        .get_mut(&fd)
                        .map(|conn| service_conn(conn, ev, scheduler, stop, &obs))
                        .unwrap_or(false);
                    if closed {
                        close_conn(&epoll, &mut conns, fd, &obs);
                    } else if let Some(conn) = conns.get(&fd) {
                        update_interest(&epoll, conn, token);
                    }
                }
            }
        }

        if stop.load(Ordering::SeqCst) && !draining {
            draining = true;
            drain_started = Instant::now();
            last_event = Instant::now();
            // Stop accepting; everything already accepted drains below.
            let _ = epoll.delete(listener.as_raw_fd());
        }

        if draining {
            let pending = conns.values().any(Conn::has_pending);
            let quiet = last_event.elapsed() >= opts.drain_grace;
            let expired = drain_started.elapsed() >= opts.drain_deadline;
            if (!pending && quiet) || expired {
                break;
            }
        }
    }

    // Final teardown: a last best-effort flush, then close everything.
    let fds: Vec<RawFd> = conns.keys().copied().collect();
    for fd in fds {
        if let Some(conn) = conns.get_mut(&fd) {
            let _ = conn.flush();
        }
        close_conn(&epoll, &mut conns, fd, &obs);
    }
    Ok(())
}

/// Exhausts one accept-readiness edge: accept to `WouldBlock`, admitting
/// each connection or bouncing it with a typed `overloaded` line.
fn accept_ready(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut BTreeMap<RawFd, Conn>,
    opts: &ServeOptions,
    obs: &LoopObs,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if conns.len() >= opts.max_connections {
                    obs.accept_overloaded.inc();
                    bounce_overloaded(stream, opts.max_connections);
                    continue;
                }
                let Ok(conn) = Conn::new(stream) else {
                    obs.accept_errors.inc();
                    continue;
                };
                let fd = conn.stream().as_raw_fd();
                if epoll
                    .add(
                        fd,
                        fd as u64,
                        Interest {
                            readable: true,
                            writable: false,
                        },
                    )
                    .is_err()
                {
                    obs.accept_errors.inc();
                    continue;
                }
                conns.insert(fd, conn);
                obs.accepted.inc();
                obs.conn_open.set(conns.len() as i64);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) => {
                // The satellite bugfix: the old loop did `Err(_) => break`
                // here, so one transient EMFILE/ECONNABORTED killed the
                // whole server. Classify, optionally breathe, never exit.
                obs.accept_errors.inc();
                match accept_error_disposition(&e) {
                    AcceptDisposition::Continue => {}
                    AcceptDisposition::Backoff => {
                        std::thread::sleep(Duration::from_millis(10));
                        return; // re-armed by the next readiness edge or event
                    }
                }
            }
        }
    }
}

/// Best-effort `overloaded` goodbye for a connection bounced at the
/// admission bound. The socket is fresh, so its send buffer is empty and
/// a nonblocking write of one short line virtually always lands whole.
fn bounce_overloaded(stream: std::net::TcpStream, limit: usize) {
    let _ = stream.set_nonblocking(true);
    let err = ServeError::coded(
        ERR_OVERLOADED,
        format!("server at its connection limit ({limit}); retry later"),
    );
    let mut line = error_response_for(&err).to_line();
    line.push('\n');
    let _ = io::Write::write(&mut (&stream), line.as_bytes());
}

/// Services one readiness event on a connection. Returns `true` when the
/// connection should be closed now.
fn service_conn(
    conn: &mut Conn,
    ev: Event,
    scheduler: &Arc<Scheduler>,
    stop: &AtomicBool,
    obs: &LoopObs,
) -> bool {
    if ev.readable || ev.hangup {
        match conn.fill() {
            Ok(ReadStatus::Open) => {}
            Ok(ReadStatus::Eof) => {
                // Process what was received, flush, then close: a client
                // that writes a request and shuts down its send side still
                // gets its response.
                conn.close_after_flush = true;
            }
            Err(_) => return true,
        }
        while let Some(frame) = conn.next_frame() {
            match frame {
                Framed::Line(line) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    let (response, shutdown) = handle_line(scheduler, trimmed);
                    conn.queue_line(&response.to_line());
                    if shutdown {
                        stop.store(true, Ordering::SeqCst);
                    }
                }
                Framed::TooLarge => {
                    obs.request_too_large.inc();
                    let err = ServeError::coded(
                        ERR_REQUEST_TOO_LARGE,
                        format!(
                            "request line exceeds {} bytes",
                            crate::protocol::MAX_REQUEST_BYTES
                        ),
                    );
                    conn.queue_line(&error_response_for(&err).to_line());
                    // Close once the error is delivered: a peer that sent
                    // an unbounded line does not get to keep the stream.
                    conn.close_after_flush = true;
                }
            }
        }
    }
    // Flush on a write-readiness edge (the kernel just made room) or when
    // the handlers above queued fresh output.
    let flushed = if ev.writable || conn.wants_write() {
        match conn.flush() {
            Ok(done) => done,
            Err(_) => return true,
        }
    } else {
        true // nothing queued, nothing to do
    };
    flushed && (conn.close_after_flush || (ev.hangup && !conn.has_pending()))
}

fn update_interest(epoll: &Epoll, conn: &Conn, token: u64) {
    let _ = epoll.modify(
        conn.stream().as_raw_fd(),
        token,
        Interest {
            readable: true,
            writable: conn.wants_write(),
        },
    );
}

fn close_conn(epoll: &Epoll, conns: &mut BTreeMap<RawFd, Conn>, fd: RawFd, obs: &LoopObs) {
    if let Some(conn) = conns.remove(&fd) {
        let _ = epoll.delete(conn.stream().as_raw_fd());
        obs.conn_open.set(conns.len() as i64);
        // The TcpStream closes on drop.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EMFILE: i32 = 24;
    const ENFILE: i32 = 23;
    const ECONNABORTED: i32 = 103;
    const ENOBUFS: i32 = 105;

    #[test]
    fn transient_accept_errors_are_never_fatal() {
        // The exact failure that used to kill the server: per-connection
        // aborts retry immediately, descriptor exhaustion backs off — and
        // no error at all maps to "exit the accept loop".
        assert_eq!(
            accept_error_disposition(&io::Error::from_raw_os_error(ECONNABORTED)),
            AcceptDisposition::Continue
        );
        assert_eq!(
            accept_error_disposition(&io::Error::from(io::ErrorKind::Interrupted)),
            AcceptDisposition::Continue
        );
        for errno in [EMFILE, ENFILE, ENOBUFS] {
            assert_eq!(
                accept_error_disposition(&io::Error::from_raw_os_error(errno)),
                AcceptDisposition::Backoff,
                "errno {errno}"
            );
        }
        // Anything unanticipated also retries (with backoff) rather than
        // exiting: the disposition type has no fatal variant to return.
        assert_eq!(
            accept_error_disposition(&io::Error::other("novel failure")),
            AcceptDisposition::Backoff
        );
    }
}
