//! The versioned JSON-lines job protocol.
//!
//! One request per line, one response per line, over TCP or stdio. Every
//! message is a JSON object carrying `"v": 1`; requests add `"cmd"` and
//! responses add `"ok"`. Unknown versions, unknown commands and malformed
//! JSON all produce an `{"ok": false, "error": ...}` response — a protocol
//! error never kills the connection, let alone the server.
//!
//! ```text
//! -> {"v":1,"cmd":"submit","subject":"Libtiff/CVE-2016-3623","max_iterations":12}
//! <- {"v":1,"ok":true,"job":1}
//! -> {"v":1,"cmd":"status","job":1}
//! <- {"v":1,"ok":true,"job":1,"subject":"...","state":"running","iterations":4,...}
//! ```
//!
//! See `DESIGN.md` §4.7 for the full schema with one example per message
//! type.

use cpr_core::{RankedPatch, RepairReport};

use crate::json::{self, Json};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: i64 = 1;

/// Hard cap on one request line, newline included. A line that grows past
/// this without terminating is answered with a typed
/// [`ERR_REQUEST_TOO_LARGE`] error instead of being buffered without
/// bound — an unbounded line buffer is a memory-exhaustion vector. Real
/// requests are tiny (the largest, `submit` and `inject`, stay well under
/// a kilobyte), so the cap is generous by three orders of magnitude.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Typed error code: the server refused work because a bounded queue
/// (accepted connections or submitted jobs) is full. Clients should back
/// off and retry.
pub const ERR_OVERLOADED: &str = "overloaded";

/// Typed error code: a request line exceeded [`MAX_REQUEST_BYTES`].
pub const ERR_REQUEST_TOO_LARGE: &str = "request-too-large";

/// A protocol-level failure: a human-readable message plus an optional
/// machine-readable code (`"overloaded"`, `"request-too-large"`).
/// Responses for errors without a code are byte-identical to what
/// protocol v1 always produced; the `code` field is additive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    code: Option<&'static str>,
    message: String,
}

impl ServeError {
    /// An untyped (message-only) error — the protocol v1 shape.
    pub fn msg(message: impl Into<String>) -> ServeError {
        ServeError {
            code: None,
            message: message.into(),
        }
    }

    /// A typed error carrying a machine-readable code.
    pub fn coded(code: &'static str, message: impl Into<String>) -> ServeError {
        ServeError {
            code: Some(code),
            message: message.into(),
        }
    }

    /// The machine-readable code, when one applies.
    pub fn code(&self) -> Option<&'static str> {
        self.code
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Convenience for tests and callers that match on the message.
    pub fn contains(&self, needle: &str) -> bool {
        self.message.contains(needle)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for ServeError {
    fn from(message: String) -> ServeError {
        ServeError::msg(message)
    }
}

impl From<&str> for ServeError {
    fn from(message: &str) -> ServeError {
        ServeError::msg(message)
    }
}

/// What a client asks a job to be: a registry subject plus optional
/// budget / parallelism overrides on top of [`cpr_core::RepairConfig`]'s
/// quick profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Registry subject name (`cpr subjects` lists them), e.g.
    /// `Libtiff/CVE-2016-3623`.
    pub subject: String,
    /// Repair-loop iteration budget (`RepairConfig::max_iterations`).
    pub max_iterations: Option<usize>,
    /// Exploration wall-clock budget (`RepairConfig::max_millis`).
    pub time_budget_ms: Option<u64>,
    /// Worker threads inside the job (`RepairConfig::threads`).
    pub threads: Option<usize>,
    /// Snapshot the job to the durable store every this many driver steps.
    pub checkpoint_every: Option<usize>,
    /// Warm start: adopt the durable snapshot stored for this previous job
    /// id (typically parked by an earlier server process over the same
    /// state directory) and continue it under the new job's id. The
    /// snapshot must exist and match the subject, or the submit fails —
    /// a new job never picks up an old checkpoint implicitly.
    pub resume_from: Option<u64>,
}

impl JobSpec {
    /// A spec with no overrides.
    pub fn new(subject: impl Into<String>) -> Self {
        JobSpec {
            subject: subject.into(),
            max_iterations: None,
            time_budget_ms: None,
            threads: None,
            checkpoint_every: None,
            resume_from: None,
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enqueue a new repair job.
    Submit(JobSpec),
    /// Job status; without an id, the status of every job.
    Status(Option<u64>),
    /// Stop a job, leaving a resumable snapshot.
    Cancel(u64),
    /// Suspend a job, leaving a resumable snapshot.
    Pause(u64),
    /// Re-enqueue a paused or canceled job; it continues from its latest
    /// snapshot, bit-identically.
    Resume(u64),
    /// The final report of a completed job.
    Report(u64),
    /// Stream an input into a live job's driver between steps — the
    /// continuous-repair verb (`cpr fuzz` uses it to feed freshly found
    /// failing inputs into an in-flight repair).
    Inject {
        /// Target job id; must not be terminal.
        job: u64,
        /// Input valuation, name → value, canonically sorted by name.
        input: Vec<(String, i64)>,
    },
    /// Process-wide metrics plus per-job observability tallies (see
    /// [`crate::stats`] for the response shape).
    Stats,
    /// Stop the server: running jobs are checkpointed and the listener
    /// exits.
    Shutdown,
}

impl Request {
    /// Parses one protocol line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let version = v
            .get("v")
            .and_then(Json::as_i64)
            .ok_or("missing protocol version field \"v\"")?;
        if version != PROTOCOL_VERSION {
            return Err(format!(
                "unsupported protocol version {version} (this server speaks {PROTOCOL_VERSION})"
            ));
        }
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing \"cmd\"")?;
        let job = |required: bool| -> Result<Option<u64>, String> {
            match v.get("job") {
                Some(j) => Ok(Some(
                    j.as_u64().ok_or("\"job\" must be a non-negative integer")?,
                )),
                None if required => Err(format!("\"{cmd}\" needs a \"job\" id")),
                None => Ok(None),
            }
        };
        match cmd {
            "submit" => {
                let subject = v
                    .get("subject")
                    .and_then(Json::as_str)
                    .ok_or("\"submit\" needs a \"subject\" name")?
                    .to_owned();
                let field_usize = |name: &str| -> Result<Option<usize>, String> {
                    v.get(name)
                        .map(|x| {
                            x.as_usize()
                                .ok_or(format!("\"{name}\" must be a non-negative integer"))
                        })
                        .transpose()
                };
                Ok(Request::Submit(JobSpec {
                    subject,
                    max_iterations: field_usize("max_iterations")?,
                    time_budget_ms: v
                        .get("time_budget_ms")
                        .map(|x| {
                            x.as_u64()
                                .ok_or("\"time_budget_ms\" must be a non-negative integer")
                        })
                        .transpose()?,
                    threads: field_usize("threads")?,
                    checkpoint_every: field_usize("checkpoint_every")?,
                    resume_from: v
                        .get("resume_from")
                        .map(|x| {
                            x.as_u64()
                                .ok_or("\"resume_from\" must be a non-negative integer")
                        })
                        .transpose()?,
                }))
            }
            "status" => Ok(Request::Status(job(false)?)),
            "cancel" => Ok(Request::Cancel(job(true)?.unwrap())),
            "pause" => Ok(Request::Pause(job(true)?.unwrap())),
            "resume" => Ok(Request::Resume(job(true)?.unwrap())),
            "report" => Ok(Request::Report(job(true)?.unwrap())),
            "inject" => {
                let id = job(true)?.unwrap();
                let obj = v
                    .get("input")
                    .ok_or("\"inject\" needs an \"input\" object")?;
                let Json::Obj(fields) = obj else {
                    return Err("\"input\" must be an object of integer values".into());
                };
                let mut input = Vec::with_capacity(fields.len());
                for (name, value) in fields {
                    let value = value
                        .as_i64()
                        .ok_or(format!("input value \"{name}\" must be an integer"))?;
                    input.push((name.clone(), value));
                }
                input.sort();
                Ok(Request::Inject { job: id, input })
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => {
                // Echo at most a fixed prefix of the unknown verb: error
                // responses go back over the wire, and an attacker-sized
                // verb must not be reflected in full.
                const VERB_ECHO_CAP: usize = 32;
                let mut shown: String = other.chars().take(VERB_ECHO_CAP).collect();
                if other.chars().count() > VERB_ECHO_CAP {
                    shown.push('…');
                }
                Err(format!("unknown command \"{shown}\""))
            }
        }
    }

    /// Serializes the request as one protocol line (the client side).
    pub fn to_line(&self) -> String {
        let mut pairs: Vec<(&str, Json)> = vec![("v", Json::Int(PROTOCOL_VERSION))];
        let push_job = |pairs: &mut Vec<(&str, Json)>, cmd: &'static str, id: u64| {
            pairs.push(("cmd", Json::Str(cmd.into())));
            pairs.push(("job", Json::Int(id as i64)));
        };
        match self {
            Request::Submit(spec) => {
                pairs.push(("cmd", Json::Str("submit".into())));
                pairs.push(("subject", Json::Str(spec.subject.clone())));
                if let Some(n) = spec.max_iterations {
                    pairs.push(("max_iterations", Json::Int(n as i64)));
                }
                if let Some(n) = spec.time_budget_ms {
                    pairs.push(("time_budget_ms", Json::Int(n as i64)));
                }
                if let Some(n) = spec.threads {
                    pairs.push(("threads", Json::Int(n as i64)));
                }
                if let Some(n) = spec.checkpoint_every {
                    pairs.push(("checkpoint_every", Json::Int(n as i64)));
                }
                if let Some(n) = spec.resume_from {
                    pairs.push(("resume_from", Json::Int(n as i64)));
                }
            }
            Request::Status(None) => pairs.push(("cmd", Json::Str("status".into()))),
            Request::Status(Some(id)) => push_job(&mut pairs, "status", *id),
            Request::Cancel(id) => push_job(&mut pairs, "cancel", *id),
            Request::Pause(id) => push_job(&mut pairs, "pause", *id),
            Request::Resume(id) => push_job(&mut pairs, "resume", *id),
            Request::Report(id) => push_job(&mut pairs, "report", *id),
            Request::Inject { job, input } => {
                push_job(&mut pairs, "inject", *job);
                let mut sorted = input.clone();
                sorted.sort();
                pairs.push((
                    "input",
                    Json::Obj(sorted.into_iter().map(|(k, v)| (k, Json::Int(v))).collect()),
                ));
            }
            Request::Stats => pairs.push(("cmd", Json::Str("stats".into()))),
            Request::Shutdown => pairs.push(("cmd", Json::Str("shutdown".into()))),
        }
        Json::obj(pairs).to_line()
    }
}

/// An `{"ok": true, ...}` response carrying `extra` fields.
pub fn ok_response(extra: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("v", Json::Int(PROTOCOL_VERSION)), ("ok", Json::Bool(true))];
    pairs.extend(extra);
    Json::obj(pairs)
}

/// An `{"ok": false, "error": ...}` response.
pub fn error_response(message: &str) -> Json {
    Json::obj(vec![
        ("v", Json::Int(PROTOCOL_VERSION)),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_owned())),
    ])
}

/// The response for a [`ServeError`]: the v1 error shape, plus a `code`
/// field when the error carries one.
pub fn error_response_for(err: &ServeError) -> Json {
    let mut pairs = vec![
        ("v", Json::Int(PROTOCOL_VERSION)),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(err.message().to_owned())),
    ];
    if let Some(code) = err.code() {
        pairs.push(("code", Json::Str(code.to_owned())));
    }
    Json::obj(pairs)
}

fn u128_str(v: u128) -> Json {
    // u128 counters (concrete patch-space sizes) exceed what JSON numbers
    // carry losslessly, so they travel as decimal strings.
    Json::Str(v.to_string())
}

fn opt<T>(v: Option<T>, f: impl FnOnce(T) -> Json) -> Json {
    v.map_or(Json::Null, f)
}

fn ranked_to_json(p: &RankedPatch) -> Json {
    Json::obj(vec![
        ("id", Json::Int(p.id as i64)),
        ("score", Json::Int(p.score)),
        ("concrete", u128_str(p.concrete)),
        ("deletion_evidence", Json::Int(p.deletion_evidence as i64)),
        ("display", Json::Str(p.display.clone())),
    ])
}

/// Serializes a [`RepairReport`] for the `report` response. Lossless for
/// every field the determinism suite compares (`u128`s travel as strings;
/// ratios keep Rust's shortest-round-trip float formatting).
pub fn report_to_json(r: &RepairReport) -> Json {
    Json::obj(vec![
        ("subject", Json::Str(r.subject.clone())),
        ("p_init", u128_str(r.p_init)),
        ("p_final", u128_str(r.p_final)),
        ("abstract_init", Json::Int(r.abstract_init as i64)),
        ("abstract_final", Json::Int(r.abstract_final as i64)),
        ("paths_explored", Json::Int(r.paths_explored as i64)),
        ("paths_skipped", Json::Int(r.paths_skipped as i64)),
        ("iterations", Json::Int(r.iterations as i64)),
        ("inputs_generated", Json::Int(r.inputs_generated as i64)),
        ("patch_loc_hit_ratio", Json::Float(r.patch_loc_hit_ratio)),
        ("bug_loc_hit_ratio", Json::Float(r.bug_loc_hit_ratio)),
        ("dev_rank", opt(r.dev_rank, |n| Json::Int(n as i64))),
        (
            "history",
            Json::Arr(r.history.iter().map(|h| u128_str(*h)).collect()),
        ),
        ("input_coverage", opt(r.input_coverage, Json::Float)),
        ("wall_millis", Json::Int(r.wall_millis as i64)),
        ("solver_queries", Json::Int(r.solver_queries as i64)),
        ("queries_screened", Json::Int(r.queries_screened as i64)),
        (
            "top_patched_source",
            opt(r.top_patched_source.clone(), Json::Str),
        ),
        (
            "ranked",
            Json::Arr(r.ranked.iter().map(ranked_to_json).collect()),
        ),
    ])
}

/// Everything in a serialized report except the wall clock, as one
/// comparable line — the protocol-level analogue of the determinism
/// suite's `report_key`. Two runs of the same job must agree on this
/// string exactly, whether they ran directly, through the server, or
/// across any number of snapshot/resume cycles.
pub fn report_fingerprint(report: &Json) -> String {
    match report {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "wall_millis")
                .cloned()
                .collect(),
        )
        .to_line(),
        other => other.to_line(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_lines() {
        let reqs = [
            Request::Submit(JobSpec {
                subject: "a/b".into(),
                max_iterations: Some(12),
                time_budget_ms: Some(5000),
                threads: Some(2),
                checkpoint_every: Some(3),
                resume_from: Some(17),
            }),
            Request::Submit(JobSpec::new("bare")),
            Request::Status(None),
            Request::Status(Some(4)),
            Request::Cancel(1),
            Request::Pause(2),
            Request::Resume(3),
            Request::Report(9),
            Request::Inject {
                job: 5,
                input: vec![("x".into(), -3), ("y".into(), 0)],
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_line();
            assert_eq!(Request::parse(&line).unwrap(), req, "line {line}");
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        let cases = [
            ("not json", "JSON error"),
            ("{}", "missing protocol version"),
            (r#"{"v":2,"cmd":"status"}"#, "unsupported protocol version"),
            (r#"{"v":1}"#, "missing \"cmd\""),
            (r#"{"v":1,"cmd":"launch"}"#, "unknown command"),
            (r#"{"v":1,"cmd":"submit"}"#, "needs a \"subject\""),
            (r#"{"v":1,"cmd":"cancel"}"#, "needs a \"job\""),
            (r#"{"v":1,"cmd":"cancel","job":-1}"#, "non-negative"),
            (
                r#"{"v":1,"cmd":"submit","subject":"s","max_iterations":"x"}"#,
                "max_iterations",
            ),
            (
                r#"{"v":1,"cmd":"submit","subject":"s","resume_from":-2}"#,
                "resume_from",
            ),
            (r#"{"v":1,"cmd":"inject"}"#, "needs a \"job\""),
            (
                r#"{"v":1,"cmd":"inject","job":"seven","input":{"x":1}}"#,
                "non-negative",
            ),
            (r#"{"v":1,"cmd":"inject","job":3}"#, "needs an \"input\""),
            (
                r#"{"v":1,"cmd":"inject","job":3,"input":[1,2]}"#,
                "must be an object",
            ),
            (
                r#"{"v":1,"cmd":"inject","job":3,"input":{"x":"zero"}}"#,
                "must be an integer",
            ),
        ];
        for (line, needle) in cases {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn inject_canonicalizes_input_order() {
        let a = Request::parse(r#"{"v":1,"cmd":"inject","job":1,"input":{"y":2,"x":1}}"#).unwrap();
        let b = Request::parse(r#"{"v":1,"cmd":"inject","job":1,"input":{"x":1,"y":2}}"#).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_line(), b.to_line());
    }

    #[test]
    fn unknown_verbs_are_echoed_truncated() {
        let long = "x".repeat(4096);
        let err = Request::parse(&format!(r#"{{"v":1,"cmd":"{long}"}}"#)).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(
            err.len() < 80,
            "oversized verb must not be reflected in full: {} bytes",
            err.len()
        );
        assert!(err.contains(&"x".repeat(32)));
        assert!(!err.contains(&"x".repeat(33)));
    }

    #[test]
    fn responses_carry_version_and_ok() {
        let ok = ok_response(vec![("job", Json::Int(7))]);
        assert_eq!(ok.to_line(), r#"{"v":1,"ok":true,"job":7}"#);
        let err = error_response("nope");
        assert_eq!(err.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(err.get("error").unwrap().as_str(), Some("nope"));
    }

    #[test]
    fn typed_errors_carry_a_code_and_untyped_ones_stay_v1_identical() {
        let typed = error_response_for(&ServeError::coded(ERR_OVERLOADED, "queue full"));
        assert_eq!(
            typed.to_line(),
            r#"{"v":1,"ok":false,"error":"queue full","code":"overloaded"}"#
        );
        // Message-only errors serialize exactly as `error_response` always
        // has — the `code` field is strictly additive for v1 clients.
        let untyped = error_response_for(&ServeError::msg("nope"));
        assert_eq!(untyped.to_line(), error_response("nope").to_line());
    }

    #[test]
    fn fingerprint_ignores_only_the_wall_clock() {
        let a = json::parse(r#"{"subject":"s","wall_millis":10,"iterations":3}"#).unwrap();
        let b = json::parse(r#"{"subject":"s","wall_millis":99,"iterations":3}"#).unwrap();
        let c = json::parse(r#"{"subject":"s","wall_millis":10,"iterations":4}"#).unwrap();
        assert_eq!(report_fingerprint(&a), report_fingerprint(&b));
        assert_ne!(report_fingerprint(&a), report_fingerprint(&c));
    }
}
