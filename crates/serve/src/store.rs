//! The durable snapshot store: one file per job, written atomically.
//!
//! Snapshots are the byte strings produced by
//! [`cpr_core::RepairDriver::snapshot`] — self-validating (magic, version,
//! subject digest, checksum), so the store itself stays dumb: it moves
//! bytes, and every integrity decision happens in
//! [`cpr_core::RepairDriver::resume`]. Writes go through a temp file and a
//! rename, so a crash mid-checkpoint leaves the previous snapshot intact
//! rather than a torn file.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// A directory of `job-<id>.snap` files.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SnapshotStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot file path for a job.
    pub fn path(&self, job: u64) -> PathBuf {
        self.dir.join(format!("job-{job}.snap"))
    }

    /// Durably replaces the snapshot for `job`: write to a temp file,
    /// flush, rename over the final name, flush the directory.
    pub fn save(&self, job: u64, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("job-{job}.snap.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path(job))?;
        // POSIX durability: fsync on the temp file persists its *contents*,
        // but the rename lives in the directory, and a crash before the
        // directory itself reaches disk can resurrect the old name (or no
        // name at all). Sync the parent dir so the swap is durable too.
        cpr_smt::fsync_dir(&self.dir)
    }

    /// Loads the snapshot for `job`; `Ok(None)` when none exists.
    pub fn load(&self, job: u64) -> io::Result<Option<Vec<u8>>> {
        match fs::read(self.path(job)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Deletes the snapshot for `job`, if any.
    pub fn remove(&self, job: u64) -> io::Result<()> {
        match fs::remove_file(self.path(job)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// The job ids with a stored snapshot, ascending.
    pub fn list(&self) -> io::Result<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix("job-")
                .and_then(|s| s.strip_suffix(".snap"))
                .and_then(|s| s.parse().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("cpr_serve_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).unwrap()
    }

    #[test]
    fn save_load_overwrite_remove() {
        let store = temp_store("basic");
        assert_eq!(store.load(1).unwrap(), None);
        store.save(1, b"one").unwrap();
        store.save(2, b"two").unwrap();
        assert_eq!(store.load(1).unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(store.list().unwrap(), vec![1, 2]);
        // Overwrite is atomic-replace, not append.
        store.save(1, b"replaced").unwrap();
        assert_eq!(store.load(1).unwrap().as_deref(), Some(&b"replaced"[..]));
        store.remove(1).unwrap();
        store.remove(1).unwrap(); // idempotent
        assert_eq!(store.load(1).unwrap(), None);
        assert_eq!(store.list().unwrap(), vec![2]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn stray_files_are_ignored_by_list() {
        let store = temp_store("stray");
        store.save(7, b"x").unwrap();
        fs::write(store.dir().join("README"), b"not a snapshot").unwrap();
        fs::write(store.dir().join("job-9.snap.tmp"), b"torn write").unwrap();
        assert_eq!(store.list().unwrap(), vec![7]);
        let _ = fs::remove_dir_all(store.dir());
    }
}
