//! Repair-as-a-service for the CPR reproduction.
//!
//! The paper's repair loop is *anytime* (§1: "the longer it is run, the
//! greater is the coverage of the input space") — which makes it a natural
//! long-running service. This crate turns [`cpr_core::RepairDriver`]'s
//! step/snapshot/resume state machine into exactly that:
//!
//! * [`protocol`] — a versioned JSON-lines protocol (`submit`, `status`,
//!   `cancel`, `pause`, `resume`, `inject`, `report`, `stats`,
//!   `shutdown`) with a dependency-free [`json`] value type underneath;
//!   errors can carry a machine-readable code ([`ServeError`]) for
//!   conditions clients should react to (`overloaded`,
//!   `request-too-large`);
//! * [`scheduler`] — a sharded worker pool driving jobs step-wise:
//!   per-shard run queues with work stealing, bounded admission, per-job
//!   iteration / wall-clock budgets and cooperative cancellation;
//! * [`store`] — a durable snapshot store (atomic write, one file per
//!   job); a canceled or paused job — or a whole server restart — resumes
//!   from its latest checkpoint *bit-identically*, the same guarantee the
//!   determinism suite proves for thread and shard counts;
//! * [`server`] / [`client`] — an epoll event-loop TCP server (edge-
//!   triggered readiness, eventfd wakeup, graceful drain; plus a stdio
//!   mode) and a small blocking client.
//!
//! The `cpr serve`, `cpr submit` and `cpr jobs` subcommands wrap these;
//! `bench_serve` measures the service against direct [`cpr_core::repair`]
//! calls and asserts report equality.
//!
//! Everything is std-only: no async runtime, no serde, no libc crate —
//! the epoll shim in `sys` declares the handful of C-library functions it
//! needs directly, keeping the repository's zero-dependency build. That
//! shim is the one `unsafe` island in the workspace (hence `deny` rather
//! than `forbid` at the crate root; every other module still refuses
//! `unsafe` outright).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod conn;
mod event_loop;
pub mod json;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod stats;
pub mod store;
mod sys;

pub use client::Client;
pub use event_loop::ServeOptions;
pub use json::Json;
pub use protocol::{
    report_fingerprint, report_to_json, JobSpec, Request, ServeError, ERR_OVERLOADED,
    ERR_REQUEST_TOO_LARGE, MAX_REQUEST_BYTES, PROTOCOL_VERSION,
};
pub use scheduler::{
    job_config, job_problem, JobState, JobStatus, Scheduler, SchedulerOptions,
    DEFAULT_MAX_QUEUED_JOBS,
};
pub use server::{handle_line, serve_lines, serve_tcp, serve_tcp_with, ServerHandle};
pub use stats::{metrics_to_json, STATS_VERSION};
pub use store::SnapshotStore;
