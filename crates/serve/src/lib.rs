//! Repair-as-a-service for the CPR reproduction.
//!
//! The paper's repair loop is *anytime* (§1: "the longer it is run, the
//! greater is the coverage of the input space") — which makes it a natural
//! long-running service. This crate turns [`cpr_core::RepairDriver`]'s
//! step/snapshot/resume state machine into exactly that:
//!
//! * [`protocol`] — a versioned JSON-lines protocol (`submit`, `status`,
//!   `cancel`, `pause`, `resume`, `inject`, `report`, `stats`,
//!   `shutdown`) with a dependency-free [`json`] value type underneath;
//! * [`scheduler`] — a bounded worker pool driving jobs step-wise, with
//!   per-job iteration / wall-clock budgets and cooperative cancellation;
//! * [`store`] — a durable snapshot store (atomic write, one file per
//!   job); a canceled or paused job — or a whole server restart — resumes
//!   from its latest checkpoint *bit-identically*, the same guarantee the
//!   determinism suite proves for thread counts;
//! * [`server`] / [`client`] — thread-per-connection TCP (plus a stdio
//!   mode) and a small blocking client.
//!
//! The `cpr serve`, `cpr submit` and `cpr jobs` subcommands wrap these;
//! `bench_serve` measures the service against direct [`cpr_core::repair`]
//! calls and asserts report equality.
//!
//! Everything is std-only: no async runtime, no serde — a deliberate
//! match for the repository's zero-dependency build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod stats;
pub mod store;

pub use client::Client;
pub use json::Json;
pub use protocol::{report_fingerprint, report_to_json, JobSpec, Request, PROTOCOL_VERSION};
pub use scheduler::{job_config, job_problem, JobState, JobStatus, Scheduler};
pub use server::{handle_line, serve_lines, serve_tcp, ServerHandle};
pub use stats::{metrics_to_json, STATS_VERSION};
pub use store::SnapshotStore;
