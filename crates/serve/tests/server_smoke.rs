//! End-to-end smoke test over a loopback TCP server: two concurrent jobs
//! from two connections, status polling, one canceled mid-flight. The
//! surviving job's report must match a direct `repair()` call byte for
//! byte (minus wall clock); the canceled job must leave a durable,
//! resumable snapshot — proven by resuming it through the server and
//! checking *its* final report against direct `repair()` too.

use std::time::Duration;

use cpr_core::{RepairDriver, RepairReport};
use cpr_serve::{
    job_config, job_problem, report_fingerprint, report_to_json, Client, JobSpec, Json, Scheduler,
    SnapshotStore,
};
use cpr_subjects::all_subjects;

fn direct_fingerprint(spec: &JobSpec) -> String {
    let report: RepairReport = cpr_core::repair(&job_problem(spec).unwrap(), &job_config(spec));
    report_fingerprint(&report_to_json(&report))
}

fn state_of(status: &Json) -> String {
    status
        .get("state")
        .and_then(Json::as_str)
        .expect("status has a state")
        .to_owned()
}

#[test]
fn loopback_server_runs_cancels_and_resumes_jobs() {
    let subjects = all_subjects();
    let mut supported = subjects.iter().filter(|s| !s.not_supported);
    let subject_a = supported.next().expect("a supported subject").name();
    let subject_b = supported.next().expect("two supported subjects").name();

    let store_dir = std::env::temp_dir().join(format!("cpr_serve_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SnapshotStore::open(&store_dir).unwrap();
    let store_probe = SnapshotStore::open(&store_dir).unwrap();

    let handle = cpr_serve::serve_tcp("127.0.0.1:0", Scheduler::new(2, store)).unwrap();
    let addr = handle.addr();

    // Two clients on separate connections, one job each — both run
    // concurrently on the two workers.
    let mut client_a = Client::connect(addr).unwrap();
    let mut client_b = Client::connect(addr).unwrap();

    let mut spec_a = JobSpec::new(subject_a);
    spec_a.max_iterations = Some(12);
    spec_a.checkpoint_every = Some(3);

    let job_a = client_a.submit(spec_a.clone()).unwrap();

    // The victim gets a per-step checkpoint cadence and a budget large
    // enough that it is still mid-flight when the cancel lands.
    // Cancellation is cooperative, so it can lose the race against a job
    // that finishes its whole budget between the progress observation and
    // the cancel request — every solver speedup widens that hazard. A
    // lost race is retried with a quadrupled budget, which multiplies the
    // work remaining after the observation point.
    let mut spec_b = JobSpec::new(subject_b);
    spec_b.checkpoint_every = Some(1);
    let mut canceled_job = None;
    for budget in [30usize, 120, 480, 1920] {
        spec_b.max_iterations = Some(budget);
        let id = client_b.submit(spec_b.clone()).unwrap();
        assert_ne!(job_a, id);

        // Poll until the victim has made observable progress, then cancel
        // it mid-flight.
        let mut progressed = false;
        for _ in 0..2400 {
            let status = client_b.status(id).unwrap();
            let iters = status.get("iterations").and_then(Json::as_i64).unwrap_or(0);
            let state = state_of(&status);
            if state == "running" && iters >= 2 {
                progressed = true;
                break;
            }
            if state == "done" {
                // Finished before progress was even observed; retry.
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        if progressed {
            // The cancel request itself can race completion ("done" jobs
            // reject it); the terminal state below decides the outcome.
            let _ = client_b.cancel(id);
            for _ in 0..2400 {
                let state = state_of(&client_b.status(id).unwrap());
                if state == "canceled" || state == "done" {
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        if state_of(&client_b.status(id).unwrap()) == "canceled" {
            canceled_job = Some(id);
            break;
        }
    }
    let job_b = canceled_job.expect("cancel lost the completion race at every budget");
    // No report for a canceled job.
    assert!(client_b.report(job_b).is_err());

    // The survivor completes and matches a direct repair() run exactly.
    let done = client_a
        .wait_terminal(job_a, Duration::from_secs(300))
        .unwrap();
    assert_eq!(state_of(&done), "done");
    assert_eq!(
        done.get("stop_reason").and_then(Json::as_str),
        Some("iteration_budget")
    );
    let report_a = client_a.report(job_a).unwrap();
    assert_eq!(report_fingerprint(&report_a), direct_fingerprint(&spec_a));

    // The canceled job left a durable snapshot that this build can load.
    let snapshot = store_probe
        .load(job_b)
        .unwrap()
        .expect("canceled job keeps a snapshot");
    RepairDriver::resume(
        job_problem(&spec_b).unwrap(),
        job_config(&spec_b),
        &snapshot,
    )
    .expect("canceled job's snapshot is resumable");

    // And resuming it through the server finishes the run with the same
    // report a cold direct run produces — cancellation lost nothing.
    client_a.resume(job_b).unwrap();
    let resumed = client_a
        .wait_terminal(job_b, Duration::from_secs(600))
        .unwrap();
    assert_eq!(state_of(&resumed), "done");
    let report_b = client_a.report(job_b).unwrap();
    assert_eq!(report_fingerprint(&report_b), direct_fingerprint(&spec_b));

    // The jobs listing shows the survivor and every victim attempt, and
    // protocol errors are responses, not disconnects.
    let jobs = client_a.jobs().unwrap();
    assert!(jobs.len() >= 2, "{} jobs listed", jobs.len());
    assert!(client_a.report(999).is_err());
    assert!(client_a.status(999).is_err());

    client_a.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// Parses `docs/metrics_allowlist.txt`: `[section]` markers, one metric
/// name per line, `#` comments.
fn read_allowlist() -> Vec<(String, Vec<String>)> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/metrics_allowlist.txt"
    );
    let text = std::fs::read_to_string(path).expect("docs/metrics_allowlist.txt must exist");
    let mut sections: Vec<(String, Vec<String>)> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            sections.push((name.to_owned(), Vec::new()));
        } else {
            sections
                .last_mut()
                .expect("a metric name before any [section] marker")
                .1
                .push(line.to_owned());
        }
    }
    sections
}

#[test]
fn stats_verb_covers_the_documented_metric_allowlist() {
    // A loopback server that has completed one job must expose every
    // metric DESIGN.md §4.8 documents — presence, not values, so a
    // metric silently falling out of the snapshot (a renamed handle, a
    // registry that stopped being the process-wide one) fails here even
    // when nothing else notices. checkpoint_every=1 makes the job write
    // snapshots, so the serve.snapshot_* histograms see samples too.
    let subjects = all_subjects();
    let subject = subjects
        .iter()
        .find(|s| !s.not_supported)
        .expect("a supported subject")
        .name();

    let store_dir =
        std::env::temp_dir().join(format!("cpr_serve_stats_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SnapshotStore::open(&store_dir).unwrap();
    let handle = cpr_serve::serve_tcp("127.0.0.1:0", Scheduler::new(1, store)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let mut spec = JobSpec::new(subject);
    spec.max_iterations = Some(4);
    spec.checkpoint_every = Some(1);
    let job = client.submit(spec).unwrap();
    let done = client.wait_terminal(job, Duration::from_secs(300)).unwrap();
    assert_eq!(state_of(&done), "done");

    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("stats_version").and_then(Json::as_i64),
        Some(cpr_serve::STATS_VERSION)
    );
    let process = stats.get("process").expect("stats has a process section");
    let histogram_names: Vec<String> = match process.get("histograms") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|h| h.get("name").and_then(Json::as_str).unwrap().to_owned())
            .collect(),
        other => panic!("histograms must be an array, got {other:?}"),
    };
    let mut missing = Vec::new();
    for (section, names) in read_allowlist() {
        for name in names {
            let present = match section.as_str() {
                "counters" | "gauges" => process.get(&section).and_then(|s| s.get(&name)).is_some(),
                "histograms" => histogram_names.contains(&name),
                other => panic!("unknown allowlist section [{other}]"),
            };
            if !present {
                missing.push(format!("{section}/{name}"));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "metrics documented in docs/metrics_allowlist.txt are absent from \
         the stats response: {missing:?}"
    );

    // The per-job rows carry the tallies for the job we just ran.
    let rows = match stats.get("jobs") {
        Some(Json::Arr(rows)) => rows.clone(),
        other => panic!("stats jobs must be an array, got {other:?}"),
    };
    let row = rows
        .iter()
        .find(|r| r.get("job").and_then(Json::as_u64) == Some(job))
        .expect("a stats row for the completed job");
    assert!(row.get("steps").and_then(Json::as_u64).unwrap() > 0);
    assert!(row.get("snapshots_written").and_then(Json::as_u64).unwrap() > 0);

    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&store_dir);
}
