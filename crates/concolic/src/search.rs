//! Generational search over path constraints and the scored input queue.
//!
//! Implements the `PickNewInput` machinery of the paper's Algorithm 1
//! (§3.4): starting from the last explored path, every suffix term is
//! negated to obtain new path-constraint prefixes (SAGE-style generational
//! search). Candidate inputs are scored by how likely they are to exercise
//! the patch and bug locations, based on the parent run's evidence.

use std::collections::{BinaryHeap, HashSet};

use cpr_smt::{Model, TermId, TermPool};

use crate::exec::{ConcolicResult, PathStep};

/// A path-constraint prefix obtained by negating one branch of an explored
/// path (all earlier branches kept, all later ones dropped).
#[derive(Debug, Clone)]
pub struct PrefixFlip {
    /// The constraints of the new prefix (last one negated).
    pub constraints: Vec<TermId>,
    /// Index of the flipped branch in the parent path.
    pub flipped_index: usize,
    /// Whether the flipped branch was a patch-hole branch.
    pub flipped_patch_branch: bool,
}

/// Enumerates all prefix flips of a path, in deepest-first order (deep flips
/// stay close to the parent path, which tends to preserve patch/bug-location
/// coverage).
pub fn prefix_flips(pool: &mut TermPool, path: &[PathStep]) -> Vec<PrefixFlip> {
    let mut out = Vec::with_capacity(path.len());
    for i in (0..path.len()).rev() {
        let mut constraints: Vec<TermId> = path[..i].iter().map(|s| s.constraint).collect();
        constraints.push(pool.not(path[i].constraint));
        out.push(PrefixFlip {
            constraints,
            flipped_index: i,
            flipped_patch_branch: path[i].from_patch(),
        });
    }
    out
}

/// Dedup set over path prefixes, keyed on the full oriented constraint
/// sequence, so the search never asks the solver about the same prefix
/// twice.
///
/// Earlier versions stored only a 64-bit `DefaultHasher` digest of the
/// sequence; a digest collision between two distinct prefixes would then
/// silently drop a never-explored path from the search. The set now owns
/// the exact sequences — prefixes are short and `TermId`s small, so the
/// memory cost is negligible next to a wrongly pruned partition.
#[derive(Debug, Default, Clone)]
pub struct SeenPrefixes {
    seen: HashSet<Box<[TermId]>>,
}

impl SeenPrefixes {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the prefix; returns `true` if it was new.
    pub fn insert(&mut self, constraints: &[TermId]) -> bool {
        if self.seen.contains(constraints) {
            return false;
        }
        self.seen.insert(constraints.into())
    }

    /// Number of distinct prefixes recorded.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no prefix has been recorded.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Iterates over the recorded prefixes in unspecified order. The set's
    /// semantics are order-independent (pure membership), so a snapshot may
    /// sort these for stable bytes and rebuild via [`SeenPrefixes::insert`]
    /// without changing any future query.
    pub fn iter(&self) -> impl Iterator<Item = &[TermId]> + '_ {
        self.seen.iter().map(|b| &**b)
    }
}

/// A generated input waiting to be explored, with its priority score.
#[derive(Debug, Clone)]
pub struct CandidateInput {
    /// The concrete input values.
    pub model: Model,
    /// Priority (higher = explored earlier).
    pub score: i64,
    /// The prefix that produced it (for bookkeeping / debugging).
    pub flipped_index: usize,
}

impl PartialEq for CandidateInput {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.flipped_index == other.flipped_index
    }
}
impl Eq for CandidateInput {}
impl PartialOrd for CandidateInput {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CandidateInput {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| self.flipped_index.cmp(&other.flipped_index))
    }
}

/// Scores a candidate produced by flipping branch `flip` of the parent run
/// `parent`: inputs derived from runs that exercised the patch and bug
/// locations — and flips beyond the patch branch — are preferred (§3.4,
/// "ranked based on how often they trigger the execution of the patch and
/// bug location").
///
/// Ties on that location evidence are broken by whether the parent path
/// actually *captured* the buggy expression — a specification `σ` or an
/// executed assertion ([`ConcolicResult::spec_observed`]). Such paths are
/// the ones whose children can reduce the patch space (Algorithm 2 needs a
/// specification to refute anything), so at equal coverage evidence they
/// rank strictly first. The whole score is shifted left one bit and the
/// evidence bit occupies the low bit, so the tie-break can never reorder
/// candidates the coverage evidence already separates.
pub fn score_candidate(parent: &ConcolicResult, flip: &PrefixFlip) -> i64 {
    let mut score = 0;
    if parent.hit_patch {
        score += 2;
    }
    if parent.hit_bug {
        score += 3;
    }
    // Flipping a branch after the patch hole keeps the hole on the path.
    if let Some(patch_pos) = parent.path.iter().position(|s| s.from_patch()) {
        if flip.flipped_index > patch_pos {
            score += 2;
        }
    }
    // Deep flips stay close to the parent path.
    score += (flip.flipped_index.min(31)) as i64 / 8;
    // Evidence-weighted tie-break: parents holding a captured specification
    // outrank evidence-free parents with the same coverage score.
    score * 2 + i64::from(parent.spec_observed())
}

/// Max-priority queue of candidate inputs awaiting exploration.
#[derive(Debug, Default, Clone)]
pub struct InputQueue {
    heap: BinaryHeap<CandidateInput>,
}

impl InputQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a candidate.
    pub fn push(&mut self, candidate: CandidateInput) {
        self.heap.push(candidate);
    }

    /// Removes and returns the highest-scored candidate.
    pub fn pop(&mut self) -> Option<CandidateInput> {
        self.heap.pop()
    }

    /// Number of waiting candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The queue's candidates in *internal heap-array order* — the order a
    /// snapshot must record. [`CandidateInput`]'s ordering ignores `model`,
    /// so candidates tying on `(score, flipped_index)` pop in whatever
    /// order the heap's internal array holds them; restoring from any other
    /// order (sorted, say) could swap the models of tied candidates and
    /// change the rest of the run.
    pub fn snapshot_order(&self) -> impl Iterator<Item = &CandidateInput> + '_ {
        self.heap.iter()
    }

    /// Rebuilds a queue from candidates recorded by
    /// [`InputQueue::snapshot_order`]. `BinaryHeap::from` heapifies the
    /// vector in place; on input that is already a valid heap layout (which
    /// a snapshot of a live heap always is), sift-down moves nothing, so
    /// the internal array — and with it the pop order of tied candidates —
    /// is restored exactly.
    pub fn from_snapshot(candidates: Vec<CandidateInput>) -> Self {
        InputQueue {
            heap: BinaryHeap::from(candidates),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_lang::Outcome;
    use cpr_smt::Sort;

    fn fake_path(pool: &mut TermPool, n: usize) -> Vec<PathStep> {
        (0..n)
            .map(|i| {
                let x = pool.named_var("x", Sort::Int);
                let c = pool.int(i as i64);
                PathStep {
                    constraint: pool.gt(x, c),
                    patch_obs: if i == 1 { Some((0, true)) } else { None },
                }
            })
            .collect()
    }

    #[test]
    fn prefix_flips_enumerate_all_suffixes() {
        let mut pool = TermPool::new();
        let path = fake_path(&mut pool, 4);
        let flips = prefix_flips(&mut pool, &path);
        assert_eq!(flips.len(), 4);
        // Deepest first.
        assert_eq!(flips[0].flipped_index, 3);
        assert_eq!(flips[0].constraints.len(), 4);
        assert_eq!(flips[3].flipped_index, 0);
        assert_eq!(flips[3].constraints.len(), 1);
        // The flipped constraint is the negation.
        let orig = path[3].constraint;
        let neg = pool.not(orig);
        assert_eq!(*flips[0].constraints.last().unwrap(), neg);
        // Patch branch is flagged.
        assert!(flips.iter().any(|f| f.flipped_patch_branch));
    }

    #[test]
    fn seen_prefixes_dedup() {
        let mut pool = TermPool::new();
        let path = fake_path(&mut pool, 3);
        let flips = prefix_flips(&mut pool, &path);
        let mut seen = SeenPrefixes::new();
        assert!(seen.insert(&flips[0].constraints));
        assert!(!seen.insert(&flips[0].constraints));
        assert!(seen.insert(&flips[1].constraints));
        assert_eq!(seen.len(), 2);
    }

    /// Regression for the 64-bit-digest dedup scheme: the set must key on
    /// the *exact oriented sequence*, so prefixes that a weak digest could
    /// conflate — permutations, equal-id-sum sequences, repetitions, and
    /// opposite orientations of the same branch — all stay distinct. (An
    /// actual `DefaultHasher` collision cannot be engineered in a test,
    /// but exact keying rules out every collision class by construction.)
    #[test]
    fn seen_prefixes_key_on_full_sequences_not_digests() {
        let mut pool = TermPool::new();
        let x = pool.named_var("x", Sort::Int);
        let zero = pool.int(0);
        let one = pool.int(1);
        let a = pool.gt(x, zero);
        let b = pool.gt(x, one);
        let not_b = pool.not(b);
        let mut seen = SeenPrefixes::new();
        // Permutations of the same constraint set are different prefixes
        // (ordering is the branch history, not a conjunction).
        assert!(seen.insert(&[a, b]));
        assert!(seen.insert(&[b, a]));
        // A prefix and its extension by a repeated id are distinct.
        assert!(seen.insert(&[a]));
        assert!(seen.insert(&[a, a]));
        // Opposite orientations of the last branch are distinct.
        assert!(seen.insert(&[a, not_b]));
        assert_eq!(seen.len(), 5);
        // Re-inserting any of them is a dup.
        assert!(!seen.insert(&[b, a]));
        assert!(!seen.insert(&[a, not_b]));
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn queue_pops_highest_score() {
        let mut q = InputQueue::new();
        q.push(CandidateInput {
            model: Model::new(),
            score: 1,
            flipped_index: 0,
        });
        q.push(CandidateInput {
            model: Model::new(),
            score: 5,
            flipped_index: 1,
        });
        q.push(CandidateInput {
            model: Model::new(),
            score: 3,
            flipped_index: 2,
        });
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().score, 5);
        assert_eq!(q.pop().unwrap().score, 3);
        assert_eq!(q.pop().unwrap().score, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_is_fifo_stable_under_equal_scores() {
        let mut q = InputQueue::new();
        for i in 0..4 {
            q.push(CandidateInput {
                model: Model::new(),
                score: 7,
                flipped_index: i,
            });
        }
        // Ties break on the flip index (deeper first), deterministically.
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|c| c.flipped_index)).collect();
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn queue_snapshot_preserves_pop_order_of_ties() {
        // Candidates that tie on (score, flipped_index) but carry different
        // models: `Ord` cannot see the models, so only restoring the exact
        // internal array order keeps the pop sequence — models included —
        // identical.
        let mut pool = TermPool::new();
        let v = pool.var("x", Sort::Int);
        let mk = |val: i64, score: i64, idx: usize| {
            let mut m = Model::new();
            m.set(v, val);
            CandidateInput {
                model: m,
                score,
                flipped_index: idx,
            }
        };
        let mut q = InputQueue::new();
        for (val, score, idx) in [
            (10, 7, 2),
            (20, 7, 2),
            (30, 7, 2),
            (40, 9, 0),
            (50, 7, 2),
            (60, 1, 5),
        ] {
            q.push(mk(val, score, idx));
        }
        // Snapshot in internal order, restore, and interleave further
        // pushes with pops on both queues: the sequences must agree on
        // every field, including the model.
        let saved: Vec<CandidateInput> = q.snapshot_order().cloned().collect();
        let mut restored = InputQueue::from_snapshot(saved);
        assert_eq!(restored.len(), q.len());
        let drain = |q: &mut InputQueue| -> Vec<(Option<i64>, i64, usize)> {
            let mut out = Vec::new();
            for round in 0..3 {
                if let Some(c) = q.pop() {
                    out.push((c.model.int(v), c.score, c.flipped_index));
                }
                q.push(mk(100 + round, 7, 2));
            }
            while let Some(c) = q.pop() {
                out.push((c.model.int(v), c.score, c.flipped_index));
            }
            out
        };
        assert_eq!(drain(&mut q), drain(&mut restored));
    }

    #[test]
    fn empty_path_has_no_flips() {
        let mut pool = TermPool::new();
        let flips = prefix_flips(&mut pool, &[]);
        assert!(flips.is_empty());
    }

    #[test]
    fn scoring_prefers_bug_hitting_parents_and_post_patch_flips() {
        let mut pool = TermPool::new();
        let path = fake_path(&mut pool, 4);
        let parent_hit = ConcolicResult {
            path: path.clone(),
            sigma: None,
            hit_patch: true,
            hit_bug: true,
            outcome: Outcome::Returned(0),
            inputs: Model::new(),
            steps: 4,
            observations: Vec::new(),
            asserts: Vec::new(),
        };
        let parent_miss = ConcolicResult {
            path,
            sigma: None,
            hit_patch: false,
            hit_bug: false,
            outcome: Outcome::Returned(0),
            inputs: Model::new(),
            steps: 4,
            observations: Vec::new(),
            asserts: Vec::new(),
        };
        let flips = prefix_flips(&mut pool, &parent_hit.path);
        let deep = &flips[0]; // flipped_index 3, after the patch branch at 1
        let shallow = &flips[3]; // flipped_index 0, before the patch branch
        assert!(score_candidate(&parent_hit, deep) > score_candidate(&parent_hit, shallow));
        assert!(score_candidate(&parent_hit, deep) > score_candidate(&parent_miss, deep));
    }

    /// The evidence tie-break prefers parents that captured the buggy
    /// expression (σ or an assert) but never reorders candidates the
    /// coverage evidence already separates: it lives strictly in the low
    /// bit of the score.
    #[test]
    fn sigma_evidence_breaks_ties_without_reordering_coverage() {
        let mut pool = TermPool::new();
        let path = fake_path(&mut pool, 4);
        let x = pool.named_var("x", Sort::Int);
        let zero = pool.int(0);
        let sigma = pool.ne(x, zero);
        let base = ConcolicResult {
            path: path.clone(),
            sigma: None,
            hit_patch: true,
            hit_bug: true,
            outcome: Outcome::Returned(0),
            inputs: Model::new(),
            steps: 4,
            observations: Vec::new(),
            asserts: Vec::new(),
        };
        let with_sigma = ConcolicResult {
            sigma: Some(sigma),
            ..base.clone()
        };
        let flips = prefix_flips(&mut pool, &path);
        for flip in &flips {
            // Same coverage evidence: σ wins by exactly the low bit.
            assert_eq!(
                score_candidate(&with_sigma, flip),
                score_candidate(&base, flip) + 1
            );
        }
        // A coverage advantage always dominates the σ bit.
        let no_coverage_with_sigma = ConcolicResult {
            hit_patch: false,
            hit_bug: false,
            sigma: Some(sigma),
            ..base.clone()
        };
        assert!(
            score_candidate(&base, &flips[0]) > score_candidate(&no_coverage_with_sigma, &flips[0])
        );
    }

    /// Seeded determinism: scoring is a pure function of the parent
    /// evidence and flip, so any seeded stream of synthetic parents/flips
    /// scores identically across passes and never reaches the provided-seed
    /// band (`score >= 50`) the repair driver reserves for non-generated
    /// inputs.
    #[test]
    fn scoring_is_deterministic_for_a_seeded_parent_stream() {
        // Tiny xorshift64* so the test needs no external RNG crate.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut pool = TermPool::new();
        let path = fake_path(&mut pool, 6);
        let flips = prefix_flips(&mut pool, &path);
        let score_stream = |draws: &[u64]| -> Vec<i64> {
            draws
                .iter()
                .map(|&d| {
                    let parent = ConcolicResult {
                        path: path.clone(),
                        sigma: None,
                        hit_patch: d & 1 != 0,
                        hit_bug: d & 2 != 0,
                        outcome: Outcome::Returned(0),
                        inputs: Model::new(),
                        steps: 6,
                        observations: Vec::new(),
                        asserts: if d & 4 != 0 {
                            vec![path[0].constraint]
                        } else {
                            Vec::new()
                        },
                    };
                    let flip = &flips[(d >> 3) as usize % flips.len()];
                    score_candidate(&parent, flip)
                })
                .collect()
        };
        let draws: Vec<u64> = (0..256).map(|_| next()).collect();
        let first = score_stream(&draws);
        let second = score_stream(&draws);
        assert_eq!(first, second);
        assert!(first.iter().all(|&s| (0..50).contains(&s)));
        // The σ bit is visible in the stream: both parities occur.
        assert!(first.iter().any(|s| s % 2 == 1));
        assert!(first.iter().any(|s| s % 2 == 0));
    }
}
