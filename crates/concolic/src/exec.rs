//! The concolic executor: runs a subject program on a concrete input while
//! building the symbolic path constraint, injecting the patch formula `ψ_ρ`
//! at the hole, and capturing the specification `σ` at the bug location.

use std::collections::HashMap;

use cpr_lang::{ast::FunDecl, BinOp, Builtin, Expr, HoleKind, Outcome, Program, Stmt, Type, UnOp};
use cpr_smt::{Model, Sort, TermId, TermPool, Value, VarId};

/// The patch inserted into the program's hole during a concolic run.
///
/// `theta` is the patch expression `θ_ρ(X_P, A)` over *pool variables whose
/// names match program variables* plus template parameter variables. During
/// symbolic evaluation the program variables are substituted by their current
/// symbolic values (that substitution is the paper's patch formula `ψ_ρ`);
/// the parameters stay symbolic. During concrete evaluation the parameters
/// take the representative values in `params`.
#[derive(Debug, Clone)]
pub struct HolePatch {
    /// Patch expression `θ_ρ`.
    pub theta: TermId,
    /// Representative concrete parameter values used to drive execution.
    pub params: Model,
}

/// One recorded branch decision: the constraint is already oriented (negated
/// when the false branch was taken).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// The oriented branch constraint over inputs `X` and parameters `A`.
    pub constraint: TermId,
    /// For steps produced by the patch hole: the index of the associated
    /// observation (see [`HoleObservation`]) and the branch polarity taken
    /// (condition holes) or `true` (expression holes, whose step is the
    /// defining equation).
    pub patch_obs: Option<(usize, bool)>,
}

impl PathStep {
    /// Whether the constraint stems from evaluating the patch hole.
    pub fn from_patch(&self) -> bool {
        self.patch_obs.is_some()
    }
}

/// Snapshot of the symbolic state at one evaluation of the patch hole.
///
/// This is the paper's first-order encoding of the patch formula `ψ_ρ`:
/// given any template `θ`, substituting each program variable by its
/// symbolic value in `subst` yields `ψ` for *that* patch at *this* hole
/// evaluation — so a single concolic run can be re-targeted at every patch
/// in the pool during `Reduce`.
#[derive(Debug, Clone)]
pub struct HoleObservation {
    /// Program variable name → symbolic value at the hole.
    pub subst: HashMap<String, TermId>,
    /// For expression holes: the fresh output variable `__hole_k` that
    /// carries the patch value through the rest of the path.
    pub out_var: Option<VarId>,
}

/// Result of one concolic run.
#[derive(Debug, Clone)]
pub struct ConcolicResult {
    /// Oriented branch constraints in execution order (the path constraint
    /// `φ_t` is their conjunction).
    pub path: Vec<PathStep>,
    /// The symbolic specification `σ` captured at the bug location (over
    /// inputs and parameters), if the bug location was reached.
    pub sigma: Option<TermId>,
    /// Whether the patch hole was evaluated (`hit_patch` in Algorithm 1).
    pub hit_patch: bool,
    /// Whether the bug location was reached (`hit_bug` in Algorithm 1).
    pub hit_bug: bool,
    /// Concrete outcome of the run.
    pub outcome: Outcome,
    /// The concrete input the run used.
    pub inputs: Model,
    /// Statements executed.
    pub steps: u64,
    /// One entry per evaluation of the patch hole, in execution order.
    pub observations: Vec<HoleObservation>,
    /// Symbolic conditions of the `assert` statements evaluated on this
    /// path (the failed one included, when the outcome is `AssertFailed`).
    /// Assertions are partial specifications (paper §1), so they take part
    /// in patch reduction alongside the bug location's `σ`.
    pub asserts: Vec<TermId>,
}

impl ConcolicResult {
    /// The path constraint `φ_t` as a single conjunction.
    pub fn path_constraint(&self, pool: &mut TermPool) -> TermId {
        pool.and_many(self.path.iter().map(|s| s.constraint))
    }

    /// The branch constraints only (oriented), without patch bookkeeping.
    pub fn constraints(&self) -> Vec<TermId> {
        self.path.iter().map(|s| s.constraint).collect()
    }

    /// The full specification observed on this path: the bug location's `σ`
    /// conjoined with every executed assertion. `None` when neither was
    /// reached (no reduction is possible then).
    pub fn spec_term(&self, pool: &mut TermPool) -> Option<TermId> {
        let mut parts: Vec<TermId> = Vec::new();
        if let Some(s) = self.sigma {
            parts.push(s);
        }
        parts.extend(self.asserts.iter().copied());
        if parts.is_empty() {
            None
        } else {
            Some(pool.and_many(parts))
        }
    }

    /// Whether any specification (bug location or assertion) was observed.
    pub fn spec_observed(&self) -> bool {
        self.sigma.is_some() || !self.asserts.is_empty()
    }

    /// Re-targets the recorded path at another patch template: every
    /// patch-hole step is replaced by `θ`'s formula in the same polarity
    /// (`ψ_ρ` oriented the way the partition went), all other steps are kept
    /// verbatim. This is what lets the Reduce step of Algorithm 2 reason
    /// about every patch in the pool from a single concolic run.
    pub fn constraints_for_patch(&self, pool: &mut TermPool, theta: TermId) -> Vec<TermId> {
        self.patched_prefix(pool, theta, self.path.len(), false)
    }

    /// Batch form of [`ConcolicResult::constraints_for_patch`]: re-targets
    /// the path at every patch template in turn, interning all constraints
    /// into `pool`. This is the pre-interning hook for the parallel reduce
    /// phase — running it serially before forking the pool guarantees every
    /// worker agrees on the `TermId` of every path constraint.
    pub fn constraints_for_patches(
        &self,
        pool: &mut TermPool,
        thetas: &[TermId],
    ) -> Vec<Vec<TermId>> {
        thetas
            .iter()
            .map(|&theta| self.constraints_for_patch(pool, theta))
            .collect()
    }

    /// The first `upto` steps re-targeted at `theta` (see
    /// [`ConcolicResult::constraints_for_patch`]); when `flip_last` is set
    /// the final step is negated (generational search).
    ///
    /// # Panics
    ///
    /// Panics if `upto` is zero with `flip_last`, or exceeds the path length.
    pub fn patched_prefix(
        &self,
        pool: &mut TermPool,
        theta: TermId,
        upto: usize,
        flip_last: bool,
    ) -> Vec<TermId> {
        assert!(upto <= self.path.len(), "prefix exceeds path");
        let mut out = Vec::with_capacity(upto);
        for (i, step) in self.path[..upto].iter().enumerate() {
            let mut c = match step.patch_obs {
                None => step.constraint,
                Some((obs_idx, polarity)) => {
                    let obs = &self.observations[obs_idx];
                    let psi = substitute_theta(pool, theta, &obs.subst);
                    match obs.out_var {
                        // Expression hole: defining equation __hole_k = ψ.
                        Some(out_var) => {
                            let hv = pool.var_term(out_var);
                            pool.eq(hv, psi)
                        }
                        // Condition hole: ψ oriented by the taken branch.
                        None => {
                            if polarity {
                                psi
                            } else {
                                pool.not(psi)
                            }
                        }
                    }
                }
            };
            if flip_last && i + 1 == upto {
                c = pool.not(c);
            }
            out.push(c);
        }
        out
    }
}

/// Substitutes the program variables of `theta` by their symbolic values at
/// a hole observation (parameters and unknown names are left symbolic).
fn substitute_theta(pool: &mut TermPool, theta: TermId, subst: &HashMap<String, TermId>) -> TermId {
    let mut map: HashMap<VarId, TermId> = HashMap::new();
    for v in pool.vars_of(theta) {
        let name = pool.var_name(v).to_owned();
        if let Some(&sym) = subst.get(&name) {
            map.insert(v, sym);
        }
    }
    pool.substitute(theta, &map)
}

/// The concolic executor. Holds budgets; all per-run state is local.
#[derive(Debug, Clone)]
pub struct ConcolicExecutor {
    max_steps: u64,
    max_path_len: usize,
}

impl Default for ConcolicExecutor {
    fn default() -> Self {
        ConcolicExecutor {
            max_steps: 100_000,
            max_path_len: 512,
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Int { c: i64, s: TermId },
    Bool { c: bool, s: TermId },
    Array(Vec<(i64, TermId)>),
}

#[derive(Debug, Clone, Copy)]
struct DualInt {
    c: i64,
    s: TermId,
}

#[derive(Debug, Clone, Copy)]
struct DualBool {
    c: bool,
    s: TermId,
}

#[derive(Debug, Clone, Copy)]
enum Dual {
    Int(DualInt),
    Bool(DualBool),
}

enum Flow {
    Normal,
    Return(DualInt),
    Stop(Outcome),
}

struct ExecState<'a> {
    pool: &'a mut TermPool,
    env: HashMap<String, Slot>,
    functions: &'a [FunDecl],
    patch: Option<&'a HolePatch>,
    path: Vec<PathStep>,
    sigma: Option<TermId>,
    hit_patch: bool,
    hit_bug: bool,
    steps: u64,
    max_steps: u64,
    max_path_len: usize,
    observations: Vec<HoleObservation>,
    asserts: Vec<TermId>,
    /// Observation index produced by the most recent hole evaluation, to be
    /// attached to the branch constraint recorded right after.
    pending_obs: Option<usize>,
}

impl ConcolicExecutor {
    /// Creates an executor with default budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an executor with custom step and path-length budgets.
    pub fn with_budgets(max_steps: u64, max_path_len: usize) -> Self {
        ConcolicExecutor {
            max_steps,
            max_path_len,
        }
    }

    /// Declares the program's inputs as pool variables (idempotent) and
    /// returns them in declaration order.
    pub fn input_vars(pool: &mut TermPool, program: &Program) -> Vec<VarId> {
        program
            .inputs
            .iter()
            .map(|i| pool.var(&i.name, Sort::Int))
            .collect()
    }

    /// Runs `program` concolically on the concrete `inputs` (a model over
    /// the input variables as named in the pool). Returns the path
    /// constraint, captured specification, hit flags, and the concrete
    /// outcome. `patch` fills the hole if present.
    pub fn execute(
        &self,
        pool: &mut TermPool,
        program: &Program,
        inputs: &Model,
        patch: Option<&HolePatch>,
    ) -> ConcolicResult {
        let mut env = HashMap::new();
        let mut input_model = Model::new();
        for decl in &program.inputs {
            let var = pool.var(&decl.name, Sort::Int);
            let sym = pool.var_term(var);
            let c = inputs.int(var).unwrap_or(decl.lo);
            input_model.set(var, c);
            env.insert(decl.name.clone(), Slot::Int { c, s: sym });
        }
        let mut st = ExecState {
            pool,
            env,
            functions: &program.functions,
            patch,
            path: Vec::new(),
            sigma: None,
            hit_patch: false,
            hit_bug: false,
            steps: 0,
            max_steps: self.max_steps,
            max_path_len: self.max_path_len,
            observations: Vec::new(),
            asserts: Vec::new(),
            pending_obs: None,
        };
        let outcome = match exec_stmts(&program.body, &mut st) {
            Ok(Flow::Return(v)) => Outcome::Returned(v.c),
            Ok(Flow::Normal) => Outcome::Returned(0),
            Ok(Flow::Stop(o)) => o,
            Err(o) => o,
        };
        ConcolicResult {
            path: st.path,
            sigma: st.sigma,
            hit_patch: st.hit_patch,
            hit_bug: st.hit_bug,
            outcome,
            inputs: input_model,
            steps: st.steps,
            observations: st.observations,
            asserts: st.asserts,
        }
    }
}

impl<'a> ExecState<'a> {
    /// Records a branch constraint. `polarity` is the direction taken; when
    /// the condition contained the patch hole, the pending observation is
    /// attached so Reduce can re-target the step at other patches.
    fn record(&mut self, constraint: TermId, polarity: bool, hole_in_cond: bool) {
        use cpr_smt::TermData;
        let patch_obs = if hole_in_cond {
            self.pending_obs.take().map(|i| (i, polarity))
        } else {
            None
        };
        // Skip constants unless they anchor a patch observation.
        if matches!(self.pool.data(constraint), TermData::BoolConst(_)) && patch_obs.is_none() {
            return;
        }
        if self.path.len() < self.max_path_len {
            self.path.push(PathStep {
                constraint,
                patch_obs,
            });
        }
    }

    fn budget(&mut self) -> Result<(), Outcome> {
        self.steps += 1;
        if self.steps > self.max_steps {
            Err(Outcome::StepLimit)
        } else {
            Ok(())
        }
    }
}

fn exec_stmts(stmts: &[Stmt], st: &mut ExecState<'_>) -> Result<Flow, Outcome> {
    for s in stmts {
        match exec_stmt(s, st)? {
            Flow::Normal => {}
            other => return Ok(other),
        }
    }
    Ok(Flow::Normal)
}

/// Executes a block body with block-scoped declarations (matching the
/// concrete interpreter).
fn exec_block(stmts: &[Stmt], st: &mut ExecState<'_>) -> Result<Flow, Outcome> {
    let before: Vec<String> = st.env.keys().cloned().collect();
    let flow = exec_stmts(stmts, st);
    st.env.retain(|k, _| before.iter().any(|b| b == k));
    flow
}

fn exec_stmt(stmt: &Stmt, st: &mut ExecState<'_>) -> Result<Flow, Outcome> {
    st.budget()?;
    match stmt {
        Stmt::Decl { name, ty, init, .. } => {
            let slot = match (ty, init) {
                (Type::IntArray(n), _) => {
                    let zero = st.pool.int(0);
                    Slot::Array(vec![(0, zero); *n])
                }
                (Type::Int, Some(e)) => {
                    let v = eval_int(e, st)?;
                    Slot::Int { c: v.c, s: v.s }
                }
                (Type::Int, None) => {
                    let zero = st.pool.int(0);
                    Slot::Int { c: 0, s: zero }
                }
                (Type::Bool, Some(e)) => {
                    let v = eval_bool(e, st)?;
                    Slot::Bool { c: v.c, s: v.s }
                }
                (Type::Bool, None) => {
                    let f = st.pool.ff();
                    Slot::Bool { c: false, s: f }
                }
            };
            st.env.insert(name.clone(), slot);
            Ok(Flow::Normal)
        }
        Stmt::Assign { name, value, .. } => {
            let slot = match st.env.get(name) {
                Some(Slot::Bool { .. }) => {
                    let v = eval_bool(value, st)?;
                    Slot::Bool { c: v.c, s: v.s }
                }
                _ => {
                    let v = eval_int(value, st)?;
                    Slot::Int { c: v.c, s: v.s }
                }
            };
            st.env.insert(name.clone(), slot);
            Ok(Flow::Normal)
        }
        Stmt::AssignIndex {
            name,
            index,
            value,
            span,
        } => {
            let idx = eval_int(index, st)?;
            let val = eval_int(value, st)?;
            // Concretize the index (standard concolic treatment of memory):
            // pin the symbolic index to its concrete value on this path.
            let idx_c = st.pool.int(idx.c);
            let pin = st.pool.eq(idx.s, idx_c);
            st.record(pin, true, false);
            match st.env.get_mut(name) {
                Some(Slot::Array(arr)) => {
                    if idx.c < 0 || idx.c as usize >= arr.len() {
                        return Err(Outcome::Crash {
                            kind: cpr_lang::CrashKind::IndexOutOfBounds,
                            span: *span,
                        });
                    }
                    arr[idx.c as usize] = (val.c, val.s);
                    Ok(Flow::Normal)
                }
                _ => unreachable!("type checker guarantees array target"),
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let c = eval_bool(cond, st)?;
            let hole = cond.contains_hole();
            if c.c {
                st.record(c.s, true, hole);
                exec_block(then_body, st)
            } else {
                let neg = st.pool.not(c.s);
                st.record(neg, false, hole);
                exec_block(else_body, st)
            }
        }
        Stmt::While { cond, body, .. } => {
            loop {
                st.budget()?;
                let c = eval_bool(cond, st)?;
                let hole = cond.contains_hole();
                if c.c {
                    st.record(c.s, true, hole);
                    match exec_block(body, st)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                } else {
                    let neg = st.pool.not(c.s);
                    st.record(neg, false, hole);
                    break;
                }
            }
            Ok(Flow::Normal)
        }
        Stmt::Return { value, .. } => {
            let v = eval_int(value, st)?;
            Ok(Flow::Return(v))
        }
        Stmt::Assert { cond, span } => {
            let c = eval_bool(cond, st)?;
            st.asserts.push(c.s);
            if c.c {
                Ok(Flow::Normal)
            } else {
                Ok(Flow::Stop(Outcome::AssertFailed { span: *span }))
            }
        }
        Stmt::Assume { cond, .. } => {
            let c = eval_bool(cond, st)?;
            if c.c {
                st.record(c.s, true, cond.contains_hole());
                Ok(Flow::Normal)
            } else {
                Ok(Flow::Stop(Outcome::AssumeFailed))
            }
        }
        Stmt::Bug { name, spec, span } => {
            st.hit_bug = true;
            let c = eval_bool(spec, st)?;
            // Capture σ symbolically regardless of the concrete verdict.
            st.sigma = Some(match st.sigma {
                None => c.s,
                Some(prev) => st.pool.and(prev, c.s),
            });
            if c.c {
                Ok(Flow::Normal)
            } else {
                Ok(Flow::Stop(Outcome::SpecViolated {
                    bug: name.clone(),
                    span: *span,
                }))
            }
        }
    }
}

fn eval_int(e: &Expr, st: &mut ExecState<'_>) -> Result<DualInt, Outcome> {
    match eval(e, st)? {
        Dual::Int(v) => Ok(v),
        Dual::Bool(_) => unreachable!("type checker guarantees int expression"),
    }
}

fn eval_bool(e: &Expr, st: &mut ExecState<'_>) -> Result<DualBool, Outcome> {
    match eval(e, st)? {
        Dual::Bool(v) => Ok(v),
        Dual::Int(_) => unreachable!("type checker guarantees bool expression"),
    }
}

fn eval(e: &Expr, st: &mut ExecState<'_>) -> Result<Dual, Outcome> {
    match e {
        Expr::Int(v, _) => {
            let s = st.pool.int(*v);
            Ok(Dual::Int(DualInt { c: *v, s }))
        }
        Expr::Bool(b, _) => {
            let s = st.pool.bool(*b);
            Ok(Dual::Bool(DualBool { c: *b, s }))
        }
        Expr::Var(name, _) => match st.env.get(name) {
            Some(Slot::Int { c, s }) => Ok(Dual::Int(DualInt { c: *c, s: *s })),
            Some(Slot::Bool { c, s }) => Ok(Dual::Bool(DualBool { c: *c, s: *s })),
            _ => unreachable!("type checker guarantees declared scalar"),
        },
        Expr::Index(name, idx, span) => {
            let i = eval_int(idx, st)?;
            let idx_c = st.pool.int(i.c);
            let pin = st.pool.eq(i.s, idx_c);
            st.record(pin, true, false);
            match st.env.get(name) {
                Some(Slot::Array(arr)) => {
                    if i.c < 0 || i.c as usize >= arr.len() {
                        Err(Outcome::Crash {
                            kind: cpr_lang::CrashKind::IndexOutOfBounds,
                            span: *span,
                        })
                    } else {
                        let (c, s) = arr[i.c as usize];
                        Ok(Dual::Int(DualInt { c, s }))
                    }
                }
                _ => unreachable!("type checker guarantees array"),
            }
        }
        Expr::Unary(UnOp::Neg, inner, _) => {
            let v = eval_int(inner, st)?;
            let s = st.pool.neg(v.s);
            Ok(Dual::Int(DualInt {
                c: v.c.saturating_neg(),
                s,
            }))
        }
        Expr::Unary(UnOp::Not, inner, _) => {
            let v = eval_bool(inner, st)?;
            let s = st.pool.not(v.s);
            Ok(Dual::Bool(DualBool { c: !v.c, s }))
        }
        Expr::Binary(op, a, b, span) => {
            if matches!(op, BinOp::And | BinOp::Or) {
                // Symbolically non-short-circuit (term construction is
                // total); concretely both operands are pure, so evaluating
                // the right side cannot change observable state except via
                // crashes, which the symbolic term algebra totalizes.
                let x = eval_bool(a, st)?;
                let y = eval_bool(b, st)?;
                let (c, s) = match op {
                    BinOp::And => (x.c && y.c, st.pool.and(x.s, y.s)),
                    BinOp::Or => (x.c || y.c, st.pool.or(x.s, y.s)),
                    _ => unreachable!(),
                };
                return Ok(Dual::Bool(DualBool { c, s }));
            }
            let x = eval_int(a, st)?;
            let y = eval_int(b, st)?;
            match op {
                BinOp::Add => Ok(Dual::Int(DualInt {
                    c: x.c.saturating_add(y.c),
                    s: st.pool.add(x.s, y.s),
                })),
                BinOp::Sub => Ok(Dual::Int(DualInt {
                    c: x.c.saturating_sub(y.c),
                    s: st.pool.sub(x.s, y.s),
                })),
                BinOp::Mul => Ok(Dual::Int(DualInt {
                    c: x.c.saturating_mul(y.c),
                    s: st.pool.mul(x.s, y.s),
                })),
                BinOp::Div => {
                    if y.c == 0 {
                        return Err(Outcome::Crash {
                            kind: cpr_lang::CrashKind::DivByZero,
                            span: *span,
                        });
                    }
                    Ok(Dual::Int(DualInt {
                        c: x.c.wrapping_div(y.c),
                        s: st.pool.div(x.s, y.s),
                    }))
                }
                BinOp::Rem => {
                    if y.c == 0 {
                        return Err(Outcome::Crash {
                            kind: cpr_lang::CrashKind::RemByZero,
                            span: *span,
                        });
                    }
                    Ok(Dual::Int(DualInt {
                        c: x.c.wrapping_rem(y.c),
                        s: st.pool.rem(x.s, y.s),
                    }))
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let cmp_op = match op {
                        BinOp::Eq => cpr_smt::CmpOp::Eq,
                        BinOp::Ne => cpr_smt::CmpOp::Ne,
                        BinOp::Lt => cpr_smt::CmpOp::Lt,
                        BinOp::Le => cpr_smt::CmpOp::Le,
                        BinOp::Gt => cpr_smt::CmpOp::Gt,
                        _ => cpr_smt::CmpOp::Ge,
                    };
                    let c = cmp_op.apply(x.c, y.c);
                    let s = st.pool.cmp(cmp_op, x.s, y.s);
                    Ok(Dual::Bool(DualBool { c, s }))
                }
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
        Expr::Call(builtin, args, span) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_int(a, st)?);
            }
            match builtin {
                Builtin::Min => {
                    let cond = st.pool.le(vals[0].s, vals[1].s);
                    let s = st.pool.ite(cond, vals[0].s, vals[1].s);
                    Ok(Dual::Int(DualInt {
                        c: vals[0].c.min(vals[1].c),
                        s,
                    }))
                }
                Builtin::Max => {
                    let cond = st.pool.ge(vals[0].s, vals[1].s);
                    let s = st.pool.ite(cond, vals[0].s, vals[1].s);
                    Ok(Dual::Int(DualInt {
                        c: vals[0].c.max(vals[1].c),
                        s,
                    }))
                }
                Builtin::Abs => {
                    let zero = st.pool.int(0);
                    let cond = st.pool.ge(vals[0].s, zero);
                    let negated = st.pool.neg(vals[0].s);
                    let s = st.pool.ite(cond, vals[0].s, negated);
                    Ok(Dual::Int(DualInt {
                        c: vals[0].c.saturating_abs(),
                        s,
                    }))
                }
                Builtin::Roundup => {
                    let (a, b) = (vals[0], vals[1]);
                    if b.c == 0 {
                        return Err(Outcome::Crash {
                            kind: cpr_lang::CrashKind::RoundupByZero,
                            span: *span,
                        });
                    }
                    // ((a + b - 1) / b) * b with the pool's total division.
                    let one = st.pool.int(1);
                    let ab = st.pool.add(a.s, b.s);
                    let ab1 = st.pool.sub(ab, one);
                    let q = st.pool.div(ab1, b.s);
                    let s = st.pool.mul(q, b.s);
                    Ok(Dual::Int(DualInt {
                        c: ((a.c + b.c - 1) / b.c) * b.c,
                        s,
                    }))
                }
            }
        }
        Expr::UserCall(name, args, _) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_int(a, st)?);
            }
            let f = st
                .functions
                .iter()
                .find(|f| f.name == *name)
                .expect("type checker guarantees declared function");
            // Pure call in a fresh scope; branch constraints inside the
            // function body are recorded into the caller's path (the
            // partition includes the callee's control flow, exactly as if
            // the call were inlined).
            let mut callee_env: HashMap<String, Slot> = HashMap::new();
            for (p, v) in f.params.iter().zip(vals) {
                callee_env.insert(p.clone(), Slot::Int { c: v.c, s: v.s });
            }
            let saved = std::mem::replace(&mut st.env, callee_env);
            let flow = exec_stmts(&f.body, st);
            st.env = saved;
            match flow? {
                Flow::Return(v) => Ok(Dual::Int(v)),
                Flow::Normal => {
                    let zero = st.pool.int(0);
                    Ok(Dual::Int(DualInt { c: 0, s: zero }))
                }
                Flow::Stop(o) => Err(o),
            }
        }
        Expr::Hole(kind, _, _) => {
            st.hit_patch = true;
            let Some(patch) = st.patch else {
                return Err(Outcome::MissingPatch);
            };
            // Snapshot the symbolic environment: this observation is the
            // first-order encoding of ψ_ρ and lets Reduce re-target the
            // path at every patch in the pool.
            let mut subst_by_name: HashMap<String, TermId> = HashMap::new();
            for (name, slot) in &st.env {
                let sym = match slot {
                    Slot::Int { s, .. } | Slot::Bool { s, .. } => *s,
                    Slot::Array(_) => continue,
                };
                subst_by_name.insert(name.clone(), sym);
            }

            // Symbolic value of θ_ρ0 at this point: program variables
            // replaced by their symbolic values, parameters left free.
            let mut subst: HashMap<VarId, TermId> = HashMap::new();
            let theta_vars = st.pool.vars_of(patch.theta);
            for v in theta_vars {
                let name = st.pool.var_name(v).to_owned();
                if let Some(&sym) = subst_by_name.get(&name) {
                    subst.insert(v, sym);
                }
            }
            let psi = st.pool.substitute(patch.theta, &subst);

            // Concrete evaluation: parameters from the representative
            // binding, program variables from the concrete environment.
            let mut model = patch.params.clone();
            let theta_vars = st.pool.vars_of(patch.theta);
            for v in theta_vars {
                if model.get(v).is_none() {
                    let name = st.pool.var_name(v).to_owned();
                    if let Some(slot) = st.env.get(&name) {
                        match slot {
                            Slot::Int { c, .. } => {
                                model.set(v, *c);
                            }
                            Slot::Bool { c, .. } => {
                                model.set(v, i64::from(*c));
                            }
                            Slot::Array(_) => {}
                        }
                    }
                }
            }
            let concrete = model.eval(st.pool, patch.theta);
            match kind {
                HoleKind::Cond => {
                    let obs_idx = st.observations.len();
                    st.observations.push(HoleObservation {
                        subst: subst_by_name,
                        out_var: None,
                    });
                    st.pending_obs = Some(obs_idx);
                    let c = match concrete {
                        Value::Bool(b) => b,
                        Value::Int(v) => v != 0,
                    };
                    Ok(Dual::Bool(DualBool { c, s: psi }))
                }
                HoleKind::IntExpr => {
                    // Route the value through a fresh output variable so
                    // that downstream constraints stay patch-independent.
                    let obs_idx = st.observations.len();
                    let out_var = st
                        .pool
                        .var(&format!("__hole_{obs_idx}"), cpr_smt::Sort::Int);
                    st.observations.push(HoleObservation {
                        subst: subst_by_name,
                        out_var: Some(out_var),
                    });
                    let hv = st.pool.var_term(out_var);
                    let eq = st.pool.eq(hv, psi);
                    // The defining equation is itself a patch step.
                    st.pending_obs = Some(obs_idx);
                    st.record(eq, true, true);
                    let c = match concrete {
                        Value::Int(v) => v,
                        Value::Bool(b) => i64::from(b),
                    };
                    Ok(Dual::Int(DualInt { c, s: hv }))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpr_lang::{check, parse};

    const DIV_SRC: &str = "program p {
        input x in [-10, 10];
        input y in [-10, 10];
        if (__patch_cond__(x, y)) { return 1; }
        bug div_by_zero requires (x * y != 0);
        return 100 / (x * y);
      }";

    fn input_model(pool: &mut TermPool, pairs: &[(&str, i64)]) -> Model {
        let mut m = Model::new();
        for (name, v) in pairs {
            let var = pool.var(name, Sort::Int);
            m.set(var, *v);
        }
        m
    }

    #[test]
    fn concolic_matches_concrete_interpreter() {
        let prog = parse("program p { input x in [-10, 10]; if (x > 3) { return 1; } return 0; }")
            .unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let inputs = input_model(&mut pool, &[("x", 7)]);
        let exec = ConcolicExecutor::new();
        let r = exec.execute(&mut pool, &prog, &inputs, None);
        assert_eq!(r.outcome, Outcome::Returned(1));
        assert_eq!(r.path.len(), 1);
        // The recorded constraint holds for the concrete input.
        assert!(r.inputs.eval_bool(&pool, r.path[0].constraint));
        assert_eq!(pool.display(r.path[0].constraint), "(> x 3)");
    }

    #[test]
    fn false_branch_is_negated() {
        let prog = parse("program p { input x in [-10, 10]; if (x > 3) { return 1; } return 0; }")
            .unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let inputs = input_model(&mut pool, &[("x", 0)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, None);
        assert_eq!(r.outcome, Outcome::Returned(0));
        assert_eq!(pool.display(r.path[0].constraint), "(<= x 3)");
    }

    #[test]
    fn path_constraint_is_satisfied_by_the_inputs() {
        let prog = parse(
            "program p {
               input a in [-10, 10];
               input b in [-10, 10];
               var s: int = a + b;
               if (s > 5) { if (a > b) { return 2; } return 1; }
               while (s < 0) { s = s + 3; }
               return s;
             }",
        )
        .unwrap();
        check(&prog).unwrap();
        for (a, b) in [(9, 9), (-7, 2), (3, 3), (-10, -10)] {
            let mut pool = TermPool::new();
            let inputs = input_model(&mut pool, &[("a", a), ("b", b)]);
            let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, None);
            for step in &r.path {
                assert!(
                    r.inputs.eval_bool(&pool, step.constraint),
                    "constraint {} not satisfied for a={a}, b={b}",
                    pool.display(step.constraint)
                );
            }
        }
    }

    #[test]
    fn bug_location_captures_sigma() {
        let prog = parse(DIV_SRC).unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        // Patch: false (never take the early return).
        let theta = pool.ff();
        let patch = HolePatch {
            theta,
            params: Model::new(),
        };
        let inputs = input_model(&mut pool, &[("x", 7), ("y", 2)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, Some(&patch));
        assert!(r.hit_patch);
        assert!(r.hit_bug);
        assert_eq!(r.outcome, Outcome::Returned(100 / 14));
        let sigma = r.sigma.unwrap();
        assert_eq!(pool.display(sigma), "(distinct (* x y) 0)");
    }

    #[test]
    fn spec_violation_detected() {
        let prog = parse(DIV_SRC).unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let theta = pool.ff();
        let patch = HolePatch {
            theta,
            params: Model::new(),
        };
        let inputs = input_model(&mut pool, &[("x", 7), ("y", 0)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, Some(&patch));
        assert!(matches!(r.outcome, Outcome::SpecViolated { .. }));
        assert!(r.hit_bug);
        assert!(r.sigma.is_some());
    }

    #[test]
    fn patch_formula_is_injected_with_parameters() {
        let prog = parse(DIV_SRC).unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        // θ := x >= a with representative a = 4.
        let x = pool.named_var("x", Sort::Int);
        let a_var = pool.var("a", Sort::Int);
        let a = pool.var_term(a_var);
        let theta = pool.ge(x, a);
        let mut params = Model::new();
        params.set(a_var, 4i64);
        let patch = HolePatch { theta, params };

        let inputs = input_model(&mut pool, &[("x", 7), ("y", 2)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, Some(&patch));
        // x=7 >= a=4, so the early return fires.
        assert_eq!(r.outcome, Outcome::Returned(1));
        assert!(r.hit_patch);
        assert!(!r.hit_bug);
        // The patch branch constraint mentions the *symbolic* parameter.
        let patch_step = r.path.iter().find(|s| s.from_patch()).unwrap();
        assert_eq!(pool.display(patch_step.constraint), "(>= x a)");
    }

    #[test]
    fn patch_condition_false_takes_else() {
        let prog = parse(DIV_SRC).unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let x = pool.named_var("x", Sort::Int);
        let a_var = pool.var("a", Sort::Int);
        let a = pool.var_term(a_var);
        let theta = pool.ge(x, a);
        let mut params = Model::new();
        params.set(a_var, 4i64);
        let patch = HolePatch { theta, params };
        let inputs = input_model(&mut pool, &[("x", 1), ("y", 2)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, Some(&patch));
        assert_eq!(r.outcome, Outcome::Returned(50));
        let patch_step = r.path.iter().find(|s| s.from_patch()).unwrap();
        assert_eq!(pool.display(patch_step.constraint), "(< x a)");
    }

    #[test]
    fn expr_hole_substitutes_symbolically() {
        let prog = parse(
            "program p {
               input x in [-10, 10];
               var y: int = 0;
               y = __patch_expr__(x);
               if (y > 5) { return 1; }
               return 0;
             }",
        )
        .unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        // θ := x + a, a = 3
        let x = pool.named_var("x", Sort::Int);
        let a_var = pool.var("a", Sort::Int);
        let a = pool.var_term(a_var);
        let theta = pool.add(x, a);
        let mut params = Model::new();
        params.set(a_var, 3i64);
        let patch = HolePatch { theta, params };
        let inputs = input_model(&mut pool, &[("x", 4)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, Some(&patch));
        assert_eq!(r.outcome, Outcome::Returned(1));
        // The hole value flows through a fresh output variable: the first
        // step is the defining equation, the second is the branch on it.
        assert_eq!(pool.display(r.path[0].constraint), "(= __hole_0 (+ x a))");
        assert!(r.path[0].from_patch());
        assert_eq!(pool.display(r.path[1].constraint), "(> __hole_0 5)");
        assert_eq!(r.observations.len(), 1);
        assert!(r.observations[0].out_var.is_some());
        // Re-targeting at another template swaps only the equation.
        let y2 = pool.named_var("x", cpr_smt::Sort::Int);
        let two = pool.int(2);
        let theta2 = pool.mul(y2, two);
        let cs = r.constraints_for_patch(&mut pool, theta2);
        assert_eq!(pool.display(cs[0]), "(= __hole_0 (* x 2))");
        assert_eq!(pool.display(cs[1]), "(> __hole_0 5)");
    }

    #[test]
    fn retargeting_cond_hole_at_other_patches() {
        let prog = parse(DIV_SRC).unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        // Execute with θ1 := x >= a (a = 4); retarget at θ2 := y < b.
        let x = pool.named_var("x", Sort::Int);
        let a_var = pool.var("a", Sort::Int);
        let a = pool.var_term(a_var);
        let theta1 = pool.ge(x, a);
        let mut params = Model::new();
        params.set(a_var, 4i64);
        let patch = HolePatch {
            theta: theta1,
            params,
        };
        let inputs = input_model(&mut pool, &[("x", 1), ("y", 2)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, Some(&patch));
        // Patch branch went false (x=1 < a=4): partition took the buggy path.
        let y = pool.named_var("y", Sort::Int);
        let b_var = pool.var("b", Sort::Int);
        let b = pool.var_term(b_var);
        let theta2 = pool.lt(y, b);
        let cs = r.constraints_for_patch(&mut pool, theta2);
        // The patch step is now ¬(y < b), same polarity as executed.
        assert!(
            cs.iter().any(|&c| pool.display(c) == "(>= y b)"),
            "{:?}",
            cs.iter().map(|&c| pool.display(c)).collect::<Vec<_>>()
        );
        // And θ1's parameter no longer occurs anywhere.
        for &c in &cs {
            assert!(!pool.contains_var(c, a_var), "{}", pool.display(c));
        }
    }

    #[test]
    fn patched_prefix_flips_last_step() {
        let prog = parse(DIV_SRC).unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let x = pool.named_var("x", Sort::Int);
        let a_var = pool.var("a", Sort::Int);
        let a = pool.var_term(a_var);
        let theta = pool.ge(x, a);
        let mut params = Model::new();
        params.set(a_var, 4i64);
        let patch = HolePatch { theta, params };
        let inputs = input_model(&mut pool, &[("x", 7), ("y", 2)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, Some(&patch));
        let full = r.constraints_for_patch(&mut pool, theta);
        let flipped = r.patched_prefix(&mut pool, theta, 1, true);
        assert_eq!(flipped.len(), 1);
        let expected = pool.not(full[0]);
        assert_eq!(flipped[0], expected);
    }

    #[test]
    fn loops_unroll_in_path() {
        let prog = parse(
            "program p {
               input n in [0, 5];
               var i: int = 0;
               while (i < n) { i = i + 1; }
               return i;
             }",
        )
        .unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let inputs = input_model(&mut pool, &[("n", 3)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, None);
        assert_eq!(r.outcome, Outcome::Returned(3));
        // 3 true iterations + 1 exit constraint.
        assert_eq!(r.path.len(), 4);
    }

    #[test]
    fn array_index_concretization_pins_symbolic_index() {
        let prog = parse(
            "program p {
               input i in [0, 7];
               var a: int[8];
               a[i] = 42;
               return a[i];
             }",
        )
        .unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let inputs = input_model(&mut pool, &[("i", 5)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, None);
        assert_eq!(r.outcome, Outcome::Returned(42));
        assert!(r
            .path
            .iter()
            .any(|s| pool.display(s.constraint) == "(= i 5)"));
    }

    #[test]
    fn user_function_branches_are_recorded_in_the_callers_path() {
        let prog = parse(
            "program p {
               fn clamp_low(v: int, lo: int) -> int {
                 if (v < lo) { return lo; }
                 return v;
               }
               input x in [-10, 10];
               var y: int = clamp_low(x, 0);
               if (y > 3) { return 1; }
               return 0;
             }",
        )
        .unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let inputs = input_model(&mut pool, &[("x", 7)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, None);
        assert_eq!(r.outcome, Outcome::Returned(1));
        // Two constraints: the callee's `v >= lo` branch and the caller's
        // `y > 3` branch, both over the input x.
        let shown: Vec<String> = r.path.iter().map(|s| pool.display(s.constraint)).collect();
        assert_eq!(shown, vec!["(>= x 0)", "(> x 3)"], "{shown:?}");
        // All constraints hold for the producing input.
        for step in &r.path {
            assert!(r.inputs.eval_bool(&pool, step.constraint));
        }
    }

    #[test]
    fn recursive_function_unrolls_concretely() {
        let prog = parse(
            "program p {
               fn triangle(n: int) -> int {
                 if (n <= 0) { return 0; }
                 return n + triangle(n - 1);
               }
               input n in [0, 6];
               return triangle(n);
             }",
        )
        .unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let inputs = input_model(&mut pool, &[("n", 4)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &inputs, None);
        assert_eq!(r.outcome, Outcome::Returned(10));
        // One branch per recursive activation (4 false + 1 base case).
        assert_eq!(r.path.len(), 5);
    }

    #[test]
    fn step_limit_reports() {
        let prog = parse("program p { while (true) { } return 0; }").unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let r =
            ConcolicExecutor::with_budgets(50, 512).execute(&mut pool, &prog, &Model::new(), None);
        assert_eq!(r.outcome, Outcome::StepLimit);
    }

    #[test]
    fn path_length_budget_truncates_recording() {
        let prog = parse(
            "program p {
               input n in [0, 50];
               var i: int = 0;
               while (i < n) { i = i + 1; }
               return i;
             }",
        )
        .unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let inputs = input_model(&mut pool, &[("n", 40)]);
        let r = ConcolicExecutor::with_budgets(100_000, 8).execute(&mut pool, &prog, &inputs, None);
        // Execution completes concretely, but only the first 8 branch
        // constraints are recorded.
        assert_eq!(r.outcome, Outcome::Returned(40));
        assert_eq!(r.path.len(), 8);
    }

    #[test]
    fn assume_records_and_stops_on_failure() {
        let prog = parse("program p { input x in [0, 9]; assume(x > 4); return x; }").unwrap();
        check(&prog).unwrap();
        let mut pool = TermPool::new();
        let ok = input_model(&mut pool, &[("x", 7)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &ok, None);
        assert_eq!(r.outcome, Outcome::Returned(7));
        assert_eq!(r.path.len(), 1);
        let bad = input_model(&mut pool, &[("x", 1)]);
        let r = ConcolicExecutor::new().execute(&mut pool, &prog, &bad, None);
        assert_eq!(r.outcome, Outcome::AssumeFailed);
    }
}
