//! Concolic execution engine for the CPR reproduction.
//!
//! This crate plays the role KLEE plays in the original tool: it executes a
//! subject program on a concrete input while collecting the symbolic path
//! constraint `φ_t`, injects the patch formula `ψ_ρ` when the execution
//! reaches the patch hole, reports whether the patch and bug locations were
//! exercised (`hit_patch` / `hit_bug` in the paper's Algorithm 1), and
//! captures the specification `σ` at the bug location.
//!
//! [`search`] implements the generational-search input generation of §3.4:
//! negate every suffix term of the last path constraint, keep a dedup set of
//! prefixes, and score candidate inputs by patch/bug-location evidence.
//!
//! # Example
//!
//! ```
//! use cpr_concolic::{ConcolicExecutor, HolePatch};
//! use cpr_lang::{parse, check};
//! use cpr_smt::{Model, Sort, TermPool};
//!
//! # fn main() -> Result<(), cpr_lang::LangError> {
//! let program = parse(
//!     "program p {
//!        input x in [-10, 10];
//!        if (__patch_cond__(x)) { return 1; }
//!        bug div_by_zero requires (x != 0);
//!        return 100 / x;
//!      }",
//! )?;
//! check(&program)?;
//!
//! let mut pool = TermPool::new();
//! // Patch candidate: x >= a with representative a = 0.
//! let x = pool.named_var("x", Sort::Int);
//! let a_var = pool.var("a", Sort::Int);
//! let a = pool.var_term(a_var);
//! let theta = pool.ge(x, a);
//! let mut params = Model::new();
//! params.set(a_var, 0i64);
//!
//! let x_var = pool.find_var("x").unwrap();
//! let mut input = Model::new();
//! input.set(x_var, 5i64);
//!
//! let result = ConcolicExecutor::new().execute(
//!     &mut pool,
//!     &program,
//!     &input,
//!     Some(&HolePatch { theta, params }),
//! );
//! assert!(result.hit_patch);
//! // The path constraint mentions the symbolic parameter `a`.
//! let phi = result.path_constraint(&mut pool);
//! assert!(pool.display(phi).contains('a'));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
pub mod search;

pub use exec::{ConcolicExecutor, ConcolicResult, HoleObservation, HolePatch, PathStep};
pub use search::{
    prefix_flips, score_candidate, CandidateInput, InputQueue, PrefixFlip, SeenPrefixes,
};
